(* Edge-case tests across all libraries: degenerate inputs, boundary
   conditions, serialization round-trips of every summary kind, and
   adversarial (corrupt) inputs. *)

open Xc_vsumm
module Dict = Xc_xml.Dictionary
module Synopsis = Xc_core.Synopsis

let check = Alcotest.check
let checkf msg = Alcotest.check (Alcotest.float 1e-9) msg
let checkf3 msg = Alcotest.check (Alcotest.float 1e-3) msg

(* ---- Histogram edges --------------------------------------------------- *)

let test_hist_single_value () =
  let h = Histogram.build (Array.make 50 7) in
  check Alcotest.int "one bucket" 1 (Histogram.n_buckets h);
  checkf "point query" 1.0 (Histogram.range_fraction h 7 7);
  checkf "outside" 0.0 (Histogram.range_fraction h 8 10)

let test_hist_negative_values () =
  let h = Histogram.build [| -10; -5; 0; 5; 10 |] in
  checkf3 "negatives covered" 1.0 (Histogram.range_fraction h (-10) 10);
  checkf3 "negative half" (2.0 /. 5.0) (Histogram.range_fraction h (-10) (-5))

let test_hist_of_raw_validation () =
  let bad msg f = Alcotest.check_raises msg (Invalid_argument msg) f in
  bad "Histogram.of_raw: bounds/counts length mismatch" (fun () ->
      ignore (Histogram.of_raw ~bounds:[| 0; 1 |] ~counts:[| 1.0; 2.0 |]));
  bad "Histogram.of_raw: bounds not ascending" (fun () ->
      ignore (Histogram.of_raw ~bounds:[| 0; 0 |] ~counts:[| 1.0 |]));
  bad "Histogram.of_raw: negative count" (fun () ->
      ignore (Histogram.of_raw ~bounds:[| 0; 1 |] ~counts:[| -1.0 |]))

let test_hist_raw_roundtrip () =
  let h = Histogram.build ~n_buckets:6 (Array.init 100 (fun i -> i * i mod 37)) in
  let bounds, counts = Histogram.raw h in
  let h2 = Histogram.of_raw ~bounds ~counts in
  List.iter
    (fun p -> checkf "same prefix" (Histogram.prefix_fraction h p) (Histogram.prefix_fraction h2 p))
    [ 0; 5; 17; 36; 40 ]

let test_maxdiff_gap_buckets_are_mergeable () =
  (* zero-count gap buckets compress away first (their error is 0) *)
  let values = Array.concat [ Array.make 100 10; Array.make 100 1000 ] in
  let h = ref (Histogram.build_maxdiff ~n_buckets:4 values) in
  while Histogram.n_buckets !h > 1 do
    h := Histogram.compress_once !h
  done;
  checkf3 "mass survives" 200.0 (Histogram.n_values !h)

(* ---- Wavelet edges ------------------------------------------------------- *)

let test_wavelet_single_value () =
  let w = Wavelet.build (Array.make 10 42) in
  checkf3 "exact point" 1.0 (Wavelet.range_fraction w 42 42);
  check Alcotest.int "lo" 42 (Wavelet.lo w);
  check Alcotest.int "hi" 42 (Wavelet.hi w)

let test_wavelet_large_domain_caps_cells () =
  (* domain of 1M values still builds (1024-cell cap) *)
  let values = Array.init 500 (fun i -> i * 2000) in
  let w = Wavelet.build ~n_coeffs:16 values in
  checkf3 "half" 0.5 (Wavelet.prefix_fraction w 500_000)

(* ---- RLE edges ------------------------------------------------------------ *)

let test_rle_boundary_merging () =
  let b = Rle_bitmap.of_list [ 5 ] in
  let b = Rle_bitmap.add b 7 in
  check Alcotest.int "two runs" 2 (Rle_bitmap.n_runs b);
  let b = Rle_bitmap.add b 6 in
  check Alcotest.int "merged" 1 (Rle_bitmap.n_runs b);
  (* removing an endpoint shrinks, removing the middle splits *)
  let b = Rle_bitmap.remove b 5 in
  check Alcotest.int "still one run" 1 (Rle_bitmap.n_runs b);
  check Alcotest.int "card" 2 (Rle_bitmap.cardinality b)

let rle_remove_property =
  QCheck.Test.make ~name:"rle remove deletes exactly one bit" ~count:150
    QCheck.(pair (list (int_range 0 100)) (int_range 0 100))
    (fun (bits, victim) ->
      let b = Rle_bitmap.of_list bits in
      let b' = Rle_bitmap.remove b victim in
      let expected =
        List.sort_uniq Int.compare bits |> List.filter (fun x -> x <> victim)
      in
      List.of_seq (Rle_bitmap.to_seq b') = expected)

(* ---- PST edges ------------------------------------------------------------- *)

let test_pst_empty_collection () =
  let p = Pst.build [] in
  checkf "n" 0.0 (Pst.n_strings p);
  checkf "selectivity" 0.0 (Pst.selectivity p "x")

let test_pst_empty_string_member () =
  let p = Pst.build [ ""; "ab" ] in
  checkf "n counts both" 2.0 (Pst.n_strings p);
  checkf3 "ab in half" 0.5 (Pst.selectivity p "ab")

let test_pst_substring_prefix_closure () =
  (* the retained substring set of any PST is prefix-closed *)
  let p = Pst.build ~max_nodes:64 [ "hello world"; "help me"; "yelp" ] in
  Pst.iter_substrings
    (fun s _ ->
      if String.length s > 1 then begin
        let prefix = String.sub s 0 (String.length s - 1) in
        match Pst.count p prefix with
        | Some _ -> ()
        | None -> Alcotest.failf "prefix %S of %S missing" prefix s
      end)
    p

let test_pst_of_substrings_roundtrip () =
  let p = Pst.build [ "abc"; "abd"; "xyz" ] in
  let entries = ref [] in
  Pst.iter_substrings (fun s c -> entries := (s, c) :: !entries) p;
  let q =
    Pst.of_substrings ~total_len:(Pst.total_len p) ~n:(Pst.n_strings p)
      ~max_depth:(Pst.max_depth p) (List.rev !entries)
  in
  check Alcotest.int "same node count" (Pst.n_nodes p) (Pst.n_nodes q);
  List.iter
    (fun s -> checkf ("same sel " ^ s) (Pst.selectivity p s) (Pst.selectivity q s))
    [ "ab"; "abc"; "xy"; "bd"; "q" ]

let test_pst_avg_len_tracks_merge () =
  let a = Pst.build [ "aaaa" ] and b = Pst.build [ "bb"; "bb" ] in
  let m = Pst.merge a b in
  checkf "total len" 8.0 (Pst.total_len m);
  checkf "n" 3.0 (Pst.n_strings m)

(* ---- Term summaries edges --------------------------------------------------- *)

let test_term_vector_zero_freqs_dropped () =
  let c = Term_vector.of_entries ~n:4.0 [ (1, 0.0); (2, 0.5) ] in
  check Alcotest.int "support" 1 (Term_vector.support_size c);
  checkf "zero absent" 0.0 (Term_vector.frequency c 1)

let test_term_hist_empty_docs () =
  let th = Term_hist.build [] in
  checkf "selectivity of anything" 0.0
    (Term_hist.selectivity th [ Dict.of_string "whatever" ])

let test_term_hist_empty_conjunction () =
  let th = Term_hist.build [ [| Dict.of_string "solo" |] ] in
  checkf "empty term list = 1" 1.0 (Term_hist.selectivity th [])

let test_term_hist_parts_roundtrip () =
  let docs =
    [ [| Dict.of_string "pa"; Dict.of_string "pb" |]; [| Dict.of_string "pa" |] ]
  in
  let th = Term_hist.build ~top_k:1 docs in
  let top, bucket, avg = Term_hist.parts th in
  let th2 = Term_hist.of_parts ~n:(Term_hist.n_documents th) ~top ~bucket ~bucket_avg:avg in
  check Alcotest.int "same size" (Term_hist.size_bytes th) (Term_hist.size_bytes th2);
  List.iter
    (fun w ->
      let id = (Dict.of_string w :> int) in
      checkf ("same freq " ^ w) (Term_hist.frequency th id) (Term_hist.frequency th2 id))
    [ "pa"; "pb"; "absent" ]

(* ---- Synopsis / Merge edges --------------------------------------------------- *)

module B = Synopsis.Builder

let test_levels_with_cycle () =
  let syn = B.create ~doc_height:4 in
  let add l c =
    B.add_node syn ~label:(Xc_xml.Label.of_string l) ~vtype:Xc_xml.Value.Tnull
      ~count:c ~vsumm:Value_summary.vnone
  in
  let r = add "r" 1 and a = add "a" 4 and leaf = add "x" 2 in
  B.set_root syn (B.sid r);
  B.set_edge syn ~parent:(B.sid r) ~child:(B.sid a) 4.0;
  B.set_edge syn ~parent:(B.sid a) ~child:(B.sid a) 0.25;
  B.set_edge syn ~parent:(B.sid r) ~child:(B.sid leaf) 2.0;
  let levels = Synopsis.Levels.compute syn in
  let level sid = Synopsis.Levels.get levels ~default:(-1) sid in
  check Alcotest.int "leaf" 0 (level (B.sid leaf));
  check Alcotest.int "root via leaf" 1 (level (B.sid r));
  (* the self-looping node has no leaf-bound path: parked above max *)
  check Alcotest.bool "cycle node above" true (level (B.sid a) > level (B.sid r))

let test_merge_shared_parent_edge_counts () =
  let syn = B.create ~doc_height:3 in
  let add l c =
    B.add_node syn ~label:(Xc_xml.Label.of_string l) ~vtype:Xc_xml.Value.Tnull
      ~count:c ~vsumm:Value_summary.vnone
  in
  let r = add "r" 1 and u = add "x" 2 and v = add "x" 6 in
  B.set_root syn (B.sid r);
  B.set_edge syn ~parent:(B.sid r) ~child:(B.sid u) 2.0;
  B.set_edge syn ~parent:(B.sid r) ~child:(B.sid v) 6.0;
  let predicted = Xc_core.Merge.saved_bytes syn u v in
  let before = B.structural_bytes syn in
  let w = Xc_core.Merge.apply syn (B.sid u) (B.sid v) in
  (* count(r,w) = count(r,u) + count(r,v) *)
  checkf "parent edge adds" 8.0
    (B.edge_count syn ~parent:(B.sid r) ~child:(B.sid w));
  check Alcotest.int "saved as predicted" (before - predicted)
    (B.structural_bytes syn)

let test_compression_delta_none_for_vnone () =
  let syn = B.create ~doc_height:2 in
  let u =
    B.add_node syn ~label:(Xc_xml.Label.of_string "x") ~vtype:Xc_xml.Value.Tnull
      ~count:3 ~vsumm:Value_summary.vnone
  in
  B.set_root syn (B.sid u);
  check Alcotest.bool "no op" true (Xc_core.Delta.compression_delta syn u = None)

(* ---- Codec fuzz ----------------------------------------------------------------- *)

let codec_rejects_corruption =
  QCheck.Test.make ~name:"codec rejects corrupted encodings with Error" ~count:60
    QCheck.(pair (int_range 0 10_000) (int_range 1 95))
    (fun (seed, percent) ->
      let doc = Xc_data.Imdb.generate ~seed:71 ~n_movies:20 () in
      let syn = Xc_core.Synopsis.freeze (Xc_core.Reference.build ~min_extent:1 doc) in
      let good = Xc_core.Codec.to_string syn in
      let rng = Xc_util.Rng.create seed in
      (* truncate and flip a byte *)
      let cut = max 5 (String.length good * percent / 100) in
      let corrupt = Bytes.of_string (String.sub good 0 (min cut (String.length good))) in
      if Bytes.length corrupt > 8 then begin
        let i = 8 + Xc_util.Rng.int rng (Bytes.length corrupt - 8) in
        Bytes.set corrupt i (Char.chr (Xc_util.Rng.int rng 256))
      end;
      match Xc_core.Codec.of_string (Bytes.to_string corrupt) with
      | Ok _ | Error _ -> true (* typed outcome either way: decoding is total *)
      | exception _ -> false)

(* ---- Parser hard cases --------------------------------------------------------- *)

let test_parser_deep_nesting () =
  let depth = 5_000 in
  let buf = Buffer.create (depth * 7) in
  for _ = 1 to depth do
    Buffer.add_string buf "<a>"
  done;
  Buffer.add_string buf "1";
  for _ = 1 to depth do
    Buffer.add_string buf "</a>"
  done;
  let doc = Xc_xml.Parser.parse_string (Buffer.contents buf) in
  check Alcotest.int "all elements" depth (Xc_xml.Document.n_elements doc)

let test_parser_numeric_bounds () =
  let doc = Xc_xml.Parser.parse_string "<r><n>-42</n><m>00123</m></r>" in
  let v i = doc.Xc_xml.Document.nodes.(i).Xc_xml.Node.value in
  check Alcotest.bool "negative" true (v 1 = Xc_xml.Value.Numeric (-42));
  check Alcotest.bool "leading zeros" true (v 2 = Xc_xml.Value.Numeric 123)

let test_parser_hex_entity () =
  let doc = Xc_xml.Parser.parse_string "<r><s>&#x41;&#66;</s></r>" in
  match doc.Xc_xml.Document.nodes.(1).Xc_xml.Node.value with
  | Xc_xml.Value.Str s -> check Alcotest.string "decoded" "AB" s
  | _ -> Alcotest.fail "expected string"

let test_parse_nested_branch_predicates () =
  let q = Xc_twig.Twig_parse.parse "//a[b/c[d > 3]]//e" in
  check Alcotest.int "preds" 1 (Xc_twig.Twig_query.n_predicates q);
  (* nested branch with its own predicate evaluates *)
  let doc =
    Xc_xml.Document.create
      (Xc_xml.Node.make "r"
         ~children:
           [ Xc_xml.Node.make "a"
               ~children:
                 [ Xc_xml.Node.make "b"
                     ~children:
                       [ Xc_xml.Node.make "c"
                           ~children:[ Xc_xml.Node.leaf "d" (Xc_xml.Value.Numeric 5) ] ];
                   Xc_xml.Node.make "e" ] ])
  in
  checkf "evaluates" 1.0 (Xc_twig.Twig_eval.selectivity doc q)

let test_eval_repeated_branches_multiply () =
  (* [cast][cast] squares the branch cardinality in binding tuples *)
  let doc =
    Xc_xml.Document.create
      (Xc_xml.Node.make "r"
         ~children:
           [ Xc_xml.Node.make "m"
               ~children:[ Xc_xml.Node.make "c"; Xc_xml.Node.make "c" ] ])
  in
  (* every variable contributes: branch c (2) x output c (2) = 4 tuples *)
  checkf "single branch" 4.0 (Xc_twig.Twig_eval.selectivity doc (Xc_twig.Twig_parse.parse "//m[c]/c"));
  checkf "squared" 8.0 (Xc_twig.Twig_eval.selectivity doc (Xc_twig.Twig_parse.parse "//m[c][c]/c"))

let () =
  Alcotest.run "xc_edge_cases"
    [ ( "histogram",
        [ Alcotest.test_case "single value" `Quick test_hist_single_value;
          Alcotest.test_case "negatives" `Quick test_hist_negative_values;
          Alcotest.test_case "of_raw validation" `Quick test_hist_of_raw_validation;
          Alcotest.test_case "raw roundtrip" `Quick test_hist_raw_roundtrip;
          Alcotest.test_case "maxdiff gaps mergeable" `Quick
            test_maxdiff_gap_buckets_are_mergeable ] );
      ( "wavelet",
        [ Alcotest.test_case "single value" `Quick test_wavelet_single_value;
          Alcotest.test_case "large domain" `Quick test_wavelet_large_domain_caps_cells ] );
      ( "rle",
        [ Alcotest.test_case "boundary merging" `Quick test_rle_boundary_merging;
          QCheck_alcotest.to_alcotest rle_remove_property ] );
      ( "pst",
        [ Alcotest.test_case "empty collection" `Quick test_pst_empty_collection;
          Alcotest.test_case "empty string member" `Quick test_pst_empty_string_member;
          Alcotest.test_case "prefix closure" `Quick test_pst_substring_prefix_closure;
          Alcotest.test_case "of_substrings roundtrip" `Quick test_pst_of_substrings_roundtrip;
          Alcotest.test_case "avg len tracks merge" `Quick test_pst_avg_len_tracks_merge ] );
      ( "terms",
        [ Alcotest.test_case "zero freqs dropped" `Quick test_term_vector_zero_freqs_dropped;
          Alcotest.test_case "empty docs" `Quick test_term_hist_empty_docs;
          Alcotest.test_case "empty conjunction" `Quick test_term_hist_empty_conjunction;
          Alcotest.test_case "parts roundtrip" `Quick test_term_hist_parts_roundtrip ] );
      ( "synopsis",
        [ Alcotest.test_case "levels with cycle" `Quick test_levels_with_cycle;
          Alcotest.test_case "shared parent merge" `Quick test_merge_shared_parent_edge_counts;
          Alcotest.test_case "vnone compression" `Quick test_compression_delta_none_for_vnone ] );
      ( "codec",
        [ QCheck_alcotest.to_alcotest codec_rejects_corruption ] );
      ( "parser",
        [ Alcotest.test_case "deep nesting" `Quick test_parser_deep_nesting;
          Alcotest.test_case "numeric bounds" `Quick test_parser_numeric_bounds;
          Alcotest.test_case "hex entities" `Quick test_parser_hex_entity;
          Alcotest.test_case "nested branch predicates" `Quick
            test_parse_nested_branch_predicates;
          Alcotest.test_case "repeated branches" `Quick test_eval_repeated_branches_multiply ] ) ]
