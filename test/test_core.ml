(* Tests for Xc_core: the synopsis graph (builder and sealed forms),
   reference construction, node merges, the Δ metric, the candidate
   pool, XCLUSTERBUILD and estimation. *)

open Xc_xml
module Synopsis = Xc_core.Synopsis
module B = Synopsis.Builder
module S = Synopsis.Sealed
module Levels = Synopsis.Levels
module Reference = Xc_core.Reference
module Merge = Xc_core.Merge
module Delta = Xc_core.Delta
module Pool = Xc_core.Pool
module Build = Xc_core.Build
module Estimate = Xc_core.Estimate
module Size = Xc_core.Size
module Vs = Xc_vsumm.Value_summary

let check = Alcotest.check
let checkf msg = Alcotest.check (Alcotest.float 1e-6) msg
let checkf2 msg = Alcotest.check (Alcotest.float 1e-2) msg

(* db with two structurally distinct paper shapes and one book *)
let sample_doc () =
  let paper ~cites year title =
    let children =
      [ Node.leaf "year" (Value.Numeric year); Node.leaf "title" (Value.Str title) ]
      @ if cites then [ Node.make "cites" ~children:[ Node.make "ref" ] ] else []
    in
    Node.make "paper" ~children
  in
  Document.create
    (Node.make "db"
       ~children:
         [ paper ~cites:true 2000 "Counting Twigs";
           paper ~cites:true 2001 "Holistic Joins";
           paper ~cites:false 2004 "Synopses";
           Node.make "book"
             ~children:[ Node.leaf "year" (Value.Numeric 1999);
                         Node.leaf "title" (Value.Str "Databases") ] ])

let exact doc q = Xc_twig.Twig_eval.selectivity doc (Xc_twig.Twig_parse.parse q)
let est syn q = Estimate.selectivity syn (Xc_twig.Twig_parse.parse q)
let estb b q = est (Synopsis.freeze b) q

(* ---- Synopsis data structure ------------------------------------------- *)

let tiny_synopsis () =
  let syn = B.create ~doc_height:3 in
  let r = B.add_node syn ~label:(Label.of_string "r") ~vtype:Value.Tnull ~count:1 ~vsumm:Vs.vnone in
  let a = B.add_node syn ~label:(Label.of_string "a") ~vtype:Value.Tnull ~count:4 ~vsumm:Vs.vnone in
  let b = B.add_node syn ~label:(Label.of_string "b") ~vtype:Value.Tnull ~count:8 ~vsumm:Vs.vnone in
  B.set_root syn (B.sid r);
  B.set_edge syn ~parent:(B.sid r) ~child:(B.sid a) 4.0;
  B.set_edge syn ~parent:(B.sid a) ~child:(B.sid b) 2.0;
  (syn, r, a, b)

let test_synopsis_edges () =
  let syn, r, a, b = tiny_synopsis () in
  checkf "edge" 4.0 (B.edge_count syn ~parent:(B.sid r) ~child:(B.sid a));
  checkf "absent edge" 0.0 (B.edge_count syn ~parent:(B.sid r) ~child:(B.sid b));
  check Alcotest.int "n_nodes" 3 (B.n_nodes syn);
  check Alcotest.int "n_edges" 2 (B.n_edges syn);
  check Alcotest.int "structural bytes" ((3 * Size.node_bytes) + (2 * Size.edge_bytes))
    (B.structural_bytes syn);
  (* deleting an edge cleans the reverse index *)
  B.set_edge syn ~parent:(B.sid a) ~child:(B.sid b) 0.0;
  check Alcotest.int "edge removed" 1 (B.n_edges syn);
  check Alcotest.bool "validate" true (B.validate syn = Ok ())

let test_synopsis_levels () =
  let syn, r, a, b = tiny_synopsis () in
  let levels = Levels.compute syn in
  check Alcotest.int "leaf" 0 (Levels.get levels ~default:(-1) (B.sid b));
  check Alcotest.int "mid" 1 (Levels.get levels ~default:(-1) (B.sid a));
  check Alcotest.int "root" 2 (Levels.get levels ~default:(-1) (B.sid r));
  check Alcotest.int "max level" 2 (Levels.max_level levels);
  Levels.set levels 99 7;
  check Alcotest.int "set raises max" 7 (Levels.max_level levels);
  check (Alcotest.option Alcotest.int) "absent sid" None (Levels.level levels 1000)

let test_synopsis_copy_independent () =
  let syn, r, a, _ = tiny_synopsis () in
  let copy = B.copy syn in
  B.set_edge syn ~parent:(B.sid r) ~child:(B.sid a) 9.0;
  checkf "copy keeps old edge" 4.0
    (B.edge_count copy ~parent:(B.sid r) ~child:(B.sid a))

let test_synopsis_validate_catches () =
  let syn, _, a, b = tiny_synopsis () in
  (* corrupt: remove b from the table but leave the edge dangling *)
  B.remove_node syn (B.sid b);
  (match B.validate syn with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected dangling edge to be caught");
  ignore a

let test_freeze_matches_builder () =
  let syn, r, a, b = tiny_synopsis () in
  let sealed = Synopsis.freeze syn in
  check Alcotest.bool "sealed valid" true (S.validate sealed = Ok ());
  check Alcotest.int "n_nodes" (B.n_nodes syn) (S.n_nodes sealed);
  check Alcotest.int "n_edges" (B.n_edges syn) (S.n_edges sealed);
  check Alcotest.int "structural bytes" (B.structural_bytes syn)
    (S.structural_bytes sealed);
  check Alcotest.int "root sid" (B.root syn) (S.root_sid sealed);
  checkf "edge r->a" 4.0 (S.edge_count sealed ~parent:(B.sid r) ~child:(B.sid a));
  checkf "edge a->b" 2.0 (S.edge_count sealed ~parent:(B.sid a) ~child:(B.sid b));
  checkf "absent edge" 0.0 (S.edge_count sealed ~parent:(B.sid r) ~child:(B.sid b));
  check (Alcotest.list (Alcotest.pair Alcotest.int (Alcotest.float 1e-9)))
    "succ of r" [ (B.sid a, 4.0) ] (S.succ sealed (B.sid r));
  check (Alcotest.list Alcotest.int) "pred of b" [ B.sid a ] (S.pred sealed (B.sid b));
  (* freezing is a snapshot: later builder mutation is invisible *)
  B.set_edge syn ~parent:(B.sid r) ~child:(B.sid a) 9.0;
  checkf "sealed unchanged" 4.0 (S.edge_count sealed ~parent:(B.sid r) ~child:(B.sid a));
  (* each freeze is a distinct value *)
  let sealed2 = Synopsis.freeze syn in
  check Alcotest.bool "fresh uid" true (S.uid sealed <> S.uid sealed2)

let test_freeze_requires_root () =
  let syn = B.create ~doc_height:1 in
  match Synopsis.freeze syn with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected freeze without a root to be rejected"

(* ---- Reference construction --------------------------------------------- *)

let test_reference_counts () =
  let doc = sample_doc () in
  let reference = Reference.build ~min_extent:1 doc in
  check Alcotest.bool "valid" true (B.validate reference = Ok ());
  (* total extent mass = document size *)
  let mass = B.fold (fun acc n -> acc + B.count n) 0 reference in
  check Alcotest.int "extent mass" (Document.n_elements doc) mass;
  (* two paper shapes => two paper clusters (count-stability) *)
  let papers =
    B.fold
      (fun acc n ->
        if String.equal (Label.to_string (B.label n)) "paper" then n :: acc else acc)
      [] reference
  in
  check Alcotest.int "two paper clusters" 2 (List.length papers);
  (* backward stability: title under paper vs book are separate clusters *)
  let titles =
    B.fold
      (fun acc n ->
        if String.equal (Label.to_string (B.label n)) "title" then n :: acc else acc)
      [] reference
  in
  check Alcotest.int "three title clusters" 3 (List.length titles)

let test_reference_estimates_struct_exactly () =
  (* on the reference synopsis, structural twigs estimate exactly *)
  let doc = sample_doc () in
  let reference = Synopsis.freeze (Reference.build ~min_extent:1 doc) in
  List.iter
    (fun q -> checkf ("exact: " ^ q) (exact doc q) (est reference q))
    [ "/db/paper"; "//paper/title"; "//ref"; "//paper[cites]/year"; "/db/*/title";
      "//paper[cites/ref]/title"; "//book/year" ]

let test_reference_value_estimates () =
  let doc = sample_doc () in
  let reference = Synopsis.freeze (Reference.build ~min_extent:1 doc) in
  checkf2 "year range" (exact doc "//paper[year < 2002]")
    (est reference "//paper[year < 2002]");
  checkf2 "substring" (exact doc "//paper[title contains(Twig)]")
    (est reference "//paper[title contains(Twig)]")

let test_tag_only () =
  let doc = sample_doc () in
  let syn = Reference.tag_only doc in
  (* one cluster per (label, vtype): db, paper, book, year, title, cites, ref *)
  check Alcotest.int "seven clusters" 7 (B.n_nodes syn);
  check Alcotest.bool "valid" true (B.validate syn = Ok ());
  (* structural counts on tags remain exact under tag-only clustering *)
  checkf "papers" 3.0 (estb syn "//paper");
  checkf "titles" 4.0 (estb syn "//title")

let test_reference_min_extent_pools () =
  let doc = Xc_data.Imdb.generate ~seed:3 ~n_movies:300 () in
  let fine = Reference.build ~min_extent:1 doc in
  let pooled = Reference.build ~min_extent:64 doc in
  check Alcotest.bool "pooling shrinks the reference" true
    (B.n_nodes pooled < B.n_nodes fine);
  check Alcotest.bool "still valid" true (B.validate pooled = Ok ())

(* ---- Merge ---------------------------------------------------------------- *)

let test_merge_counts_and_edges () =
  let doc = sample_doc () in
  let syn = Reference.build ~min_extent:1 doc in
  let papers =
    B.fold
      (fun acc n ->
        if String.equal (Label.to_string (B.label n)) "paper" then n :: acc else acc)
      [] syn
  in
  match papers with
  | [ u; v ] ->
    let cu = B.count u and cv = B.count v in
    let n_before = B.n_nodes syn in
    let str_before = B.structural_bytes syn in
    let predicted = Merge.saved_bytes syn u v in
    let w = Merge.apply syn (B.sid u) (B.sid v) in
    check Alcotest.int "counts add" (cu + cv) (B.count w);
    check Alcotest.int "one fewer node" (n_before - 1) (B.n_nodes syn);
    check Alcotest.int "saved bytes exact" (str_before - predicted)
      (B.structural_bytes syn);
    check Alcotest.bool "valid after merge" true (B.validate syn = Ok ());
    (* structural tag counts survive any merge *)
    checkf "papers still 3" 3.0 (estb syn "//paper");
    checkf "titles still 4" 4.0 (estb syn "//title")
  | _ -> Alcotest.fail "expected two paper clusters"

let test_merge_to_tag_only_equivalence () =
  (* merging everything mergeable yields the tag-only structural counts *)
  let doc = sample_doc () in
  let syn = B.copy (Reference.build ~min_extent:1 doc) in
  let params = Build.params ~bstr_kb:0 ~bval_kb:10_000 () in
  Build.phase1_merge { params with Build.bstr = 0 } syn;
  check Alcotest.bool "valid" true (B.validate syn = Ok ());
  let tag = Reference.tag_only doc in
  check Alcotest.int "same node count" (B.n_nodes tag) (B.n_nodes syn)

let test_merge_incompatible_rejected () =
  let doc = sample_doc () in
  let syn = Reference.build ~min_extent:1 doc in
  let find label =
    B.fold
      (fun acc n ->
        if String.equal (Label.to_string (B.label n)) label then Some n else acc)
      None syn
    |> Option.get
  in
  let paper = find "paper" and year = find "year" in
  Alcotest.check_raises "label mismatch"
    (Invalid_argument "Merge.apply: incompatible nodes") (fun () ->
      ignore (Merge.apply syn (B.sid paper) (B.sid year)));
  Alcotest.check_raises "self merge"
    (Invalid_argument "Merge.apply: cannot merge a node with itself") (fun () ->
      ignore (Merge.apply syn (B.sid paper) (B.sid paper)))

let test_merge_self_loop () =
  (* recursive structure: merging the two 'a' clusters creates a self-loop
     with the right average count *)
  let syn = B.create ~doc_height:3 in
  let add label count =
    B.add_node syn ~label:(Label.of_string label) ~vtype:Value.Tnull ~count
      ~vsumm:Vs.vnone
  in
  let r = add "r" 1 and a1 = add "a" 2 and a2 = add "a" 6 in
  B.set_root syn (B.sid r);
  B.set_edge syn ~parent:(B.sid r) ~child:(B.sid a1) 2.0;
  B.set_edge syn ~parent:(B.sid a1) ~child:(B.sid a2) 3.0;
  let w = Merge.apply syn (B.sid a1) (B.sid a2) in
  check Alcotest.bool "valid" true (B.validate syn = Ok ());
  (* count(w,w) = (2*3 + 6*0)/8 *)
  checkf "self loop avg" 0.75
    (B.edge_count syn ~parent:(B.sid w) ~child:(B.sid w));
  checkf "root edge total" 2.0
    (B.edge_count syn ~parent:(B.sid r) ~child:(B.sid w))

(* ---- Delta ------------------------------------------------------------------ *)

let test_delta_identical_is_zero () =
  (* merging two clusters with identical centroids and values costs 0 *)
  let syn = B.create ~doc_height:2 in
  let add label count vsumm =
    B.add_node syn ~label:(Label.of_string label) ~vtype:Value.Tnumeric ~count ~vsumm
  in
  let mk_vs () = Vs.of_values (List.init 10 (fun i -> Value.Numeric i)) in
  let u = add "x" 5 (mk_vs ()) and v = add "x" 5 (mk_vs ()) in
  let r =
    B.add_node syn ~label:(Label.of_string "r") ~vtype:Value.Tnull ~count:1
      ~vsumm:Vs.vnone
  in
  B.set_root syn (B.sid r);
  B.set_edge syn ~parent:(B.sid r) ~child:(B.sid u) 5.0;
  B.set_edge syn ~parent:(B.sid r) ~child:(B.sid v) 5.0;
  checkf "zero delta" 0.0 (Delta.merge_delta syn u v)

let test_delta_grows_with_dissimilarity () =
  let syn = B.create ~doc_height:2 in
  let add label count vsumm =
    B.add_node syn ~label:(Label.of_string label) ~vtype:Value.Tnumeric ~count ~vsumm
  in
  let low = Vs.of_values (List.init 20 (fun i -> Value.Numeric i)) in
  let near = Vs.of_values (List.init 20 (fun i -> Value.Numeric (i + 3))) in
  let far = Vs.of_values (List.init 20 (fun i -> Value.Numeric (i + 500))) in
  let u = add "x" 20 low and v1 = add "x" 20 near and v2 = add "x" 20 far in
  let r =
    B.add_node syn ~label:(Label.of_string "r") ~vtype:Value.Tnull ~count:1
      ~vsumm:Vs.vnone
  in
  B.set_root syn (B.sid r);
  List.iter
    (fun n -> B.set_edge syn ~parent:(B.sid r) ~child:(B.sid n) 20.0)
    [ u; v1; v2 ];
  let d_near = Delta.merge_delta syn u v1 and d_far = Delta.merge_delta syn u v2 in
  check Alcotest.bool "near < far" true (d_near < d_far);
  check Alcotest.bool "positive" true (d_near > 0.0)

let test_delta_structural_component () =
  (* same (null) values, different fanouts: structural error must show *)
  let syn, _, a, b = tiny_synopsis () in
  let c =
    B.add_node syn ~label:(Label.of_string "a") ~vtype:Value.Tnull ~count:4
      ~vsumm:Vs.vnone
  in
  B.set_edge syn ~parent:(B.sid c) ~child:(B.sid b) 7.0;
  let d = Delta.merge_delta syn a c in
  check Alcotest.bool "fanout difference costs" true (d > 0.0);
  (* structural_only agrees here because the values are Null anyway *)
  checkf "structural-only same" d (Delta.merge_delta ~structural_only:true syn a c)

let test_compression_delta () =
  let syn = B.create ~doc_height:2 in
  let vs = Vs.of_values (List.init 64 (fun i -> Value.Numeric i)) in
  let u =
    B.add_node syn ~label:(Label.of_string "x") ~vtype:Value.Tnumeric ~count:64
      ~vsumm:vs
  in
  B.set_root syn (B.sid u);
  match Delta.compression_delta syn u with
  | Some (delta, saved) ->
    check Alcotest.bool "delta >= 0" true (delta >= 0.0);
    check Alcotest.int "histogram step saves 8" 8 saved
  | None -> Alcotest.fail "expected a compression step"

(* ---- Pool ------------------------------------------------------------------- *)

let test_pool_only_compatible_pairs () =
  let doc = sample_doc () in
  let syn = Reference.build ~min_extent:1 doc in
  let levels = Levels.compute syn in
  let pool = Pool.build Pool.default_config syn ~levels ~level:99 in
  let rec drain () =
    match Pool.pop_valid Pool.default_config syn pool with
    | None -> ()
    | Some cand ->
      let u = B.find syn cand.Pool.u and v = B.find syn cand.Pool.v in
      check Alcotest.bool "compatible" true (Merge.compatible u v);
      drain ()
  in
  drain ()

let test_pool_respects_level () =
  let doc = sample_doc () in
  let syn = Reference.build ~min_extent:1 doc in
  let levels = Levels.compute syn in
  (* at level 0 only leaves pair up *)
  let pool = Pool.build Pool.default_config syn ~levels ~level:0 in
  let rec drain () =
    match Pool.pop_valid Pool.default_config syn pool with
    | None -> ()
    | Some cand ->
      check Alcotest.int "leaf level u" 0 (Levels.get levels ~default:(-1) cand.Pool.u);
      check Alcotest.int "leaf level v" 0 (Levels.get levels ~default:(-1) cand.Pool.v);
      drain ()
  in
  drain ()

let test_pool_orders_by_marginal_loss () =
  let doc = sample_doc () in
  let syn = Reference.build ~min_extent:1 doc in
  let levels = Levels.compute syn in
  let pool = Pool.build Pool.default_config syn ~levels ~level:99 in
  let rec losses acc =
    match Pool.pop_valid Pool.default_config syn pool with
    | None -> List.rev acc
    | Some cand -> losses (Delta.marginal_loss cand.Pool.delta cand.Pool.saved :: acc)
  in
  let seq = losses [] in
  let rec nondecreasing = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-12 && nondecreasing rest
    | _ -> true
  in
  check Alcotest.bool "sorted" true (nondecreasing seq)

(* ---- Build ------------------------------------------------------------------- *)

let sealed_all_exhausted syn =
  let ok = ref true in
  for i = 0 to S.n_nodes syn - 1 do
    if Vs.preview_compression (S.vsumm syn i) <> None then ok := false
  done;
  !ok

let test_build_meets_budgets () =
  let doc = Xc_data.Imdb.generate ~seed:11 ~n_movies:400 () in
  let reference = Reference.build ~min_extent:8 doc in
  let str_before = B.structural_bytes reference in
  let params = Build.params ~bstr_kb:6 ~bval_kb:40 () in
  let syn = Build.run params reference in
  check Alcotest.bool "structural budget met" true
    (S.structural_bytes syn <= Size.kb 6);
  (* the value budget is met unless compression bottomed out on its
     lossless floors (RLE buckets, per-symbol PST nodes) *)
  check Alcotest.bool "value budget met or floors reached" true
    (S.value_bytes syn <= Size.kb 40 || sealed_all_exhausted syn);
  check Alcotest.bool "valid" true (S.validate syn = Ok ());
  (* the reference itself is untouched by the run *)
  check Alcotest.int "reference intact" str_before (B.structural_bytes reference)

let test_build_extent_mass_invariant () =
  let doc = Xc_data.Imdb.generate ~seed:12 ~n_movies:300 () in
  let reference = Reference.build doc in
  let syn = Build.run (Build.params ~bstr_kb:4 ~bval_kb:30 ()) reference in
  let mass = Array.fold_left ( + ) 0 (S.counts syn) in
  check Alcotest.int "extent mass preserved" (Document.n_elements doc) mass

let test_build_sweep_prefix_consistency () =
  (* sweep snapshots equal independent runs at the same budget *)
  let doc = Xc_data.Imdb.generate ~seed:13 ~n_movies:250 () in
  let reference = Reference.build doc in
  let sweep = Build.sweep ~bval_kb:40 ~bstr_kbs:[ 8; 4 ] reference in
  let independent = Build.run (Build.params ~bstr_kb:4 ~bval_kb:40 ()) reference in
  let at4 = List.assoc 4 sweep in
  check Alcotest.int "same nodes" (S.n_nodes independent) (S.n_nodes at4);
  check Alcotest.int "same structural bytes" (S.structural_bytes independent)
    (S.structural_bytes at4);
  (* and estimates agree *)
  let q = "//movie/cast/actor/name" in
  checkf "same estimate" (est independent q) (est at4 q)

let test_structure_value_correlation_beats_tag_only () =
  (* the headline mechanism: when the same tag carries different value
     distributions on different paths, a structure-value cluster
     estimates a path-specific predicate exactly while the tag-only
     summary mixes the distributions and errs *)
  let doc =
    (* 100 'old' years (1900..1949) under a, 100 'new' (2000..2049) under b *)
    Document.create
      (Node.make "db"
         ~children:
           [ Node.make "a"
               ~children:
                 (List.init 100 (fun i -> Node.leaf "year" (Value.Numeric (1900 + (i mod 50)))));
             Node.make "b"
               ~children:
                 (List.init 100 (fun i -> Node.leaf "year" (Value.Numeric (2000 + (i mod 50))))) ])
  in
  let q = "/db/a/year[. < 1950]" in
  let truth = exact doc q in
  checkf "truth" 100.0 truth;
  let reference = Reference.build ~min_extent:1 doc in
  checkf "reference exact" truth (estb reference q);
  let tag = Reference.tag_only doc in
  let tag_est = estb tag q in
  (* tag-only mixes both year populations: σ = 0.5 over a 200-element
     cluster reached through the /db/a edge => half the true count *)
  check Alcotest.bool "tag-only underestimates by ~2x" true
    (tag_est < 0.7 *. truth)

(* ---- Estimate --------------------------------------------------------------- *)

let test_estimate_reach () =
  let doc = sample_doc () in
  let syn = Synopsis.freeze (Reference.tag_only doc) in
  let reach = Estimate.reach syn [ Xc_twig.Path_expr.desc "title" ] (S.root_sid syn) in
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 reach in
  checkf "4 titles reachable" 4.0 total

let test_estimate_wildcards_and_desc () =
  let doc = sample_doc () in
  let syn = Synopsis.freeze (Reference.build ~min_extent:1 doc) in
  List.iter
    (fun q -> checkf ("exact: " ^ q) (exact doc q) (est syn q))
    [ "//*"; "/db//*"; "//paper//*"; "/*/paper" ]

let test_estimate_predicate_type_mismatch_zero () =
  let doc = sample_doc () in
  let syn = Synopsis.freeze (Reference.build ~min_extent:1 doc) in
  checkf "range on string node" 0.0 (est syn "//paper[title > 1900]");
  checkf "contains on numeric node" 0.0 (est syn "//paper[year contains(x)]")

let test_estimate_cyclic_synopsis_terminates () =
  (* descendant estimation over a cyclic synopsis must terminate *)
  let syn = B.create ~doc_height:6 in
  let add label count =
    B.add_node syn ~label:(Label.of_string label) ~vtype:Value.Tnull ~count
      ~vsumm:Vs.vnone
  in
  let r = add "r" 1 and a = add "p" 10 in
  B.set_root syn (B.sid r);
  B.set_edge syn ~parent:(B.sid r) ~child:(B.sid a) 2.0;
  B.set_edge syn ~parent:(B.sid a) ~child:(B.sid a) 0.5;
  let v = estb syn "//p" in
  check Alcotest.bool "finite" true (Float.is_finite v);
  check Alcotest.bool "positive" true (v > 0.0)

(* ---- Codec ------------------------------------------------------------------ *)

let same_estimates doc a b =
  List.iter
    (fun q -> checkf ("roundtrip estimate: " ^ q) (est a q) (est b q))
    [ "//paper"; "//paper[year < 2002]"; "//paper[title contains(Twi)]";
      "//paper[cites/ref]/title"; "/db/*/year[. = 1999]" ];
  ignore doc

let test_codec_roundtrip () =
  let doc = sample_doc () in
  let syn = Synopsis.freeze (Reference.build ~min_extent:1 doc) in
  let encoded = Xc_core.Codec.to_string syn in
  let decoded = Xc_core.Codec.of_string_exn encoded in
  check Alcotest.int "same nodes" (S.n_nodes syn) (S.n_nodes decoded);
  check Alcotest.int "same edges" (S.n_edges syn) (S.n_edges decoded);
  check Alcotest.int "same structural bytes" (S.structural_bytes syn)
    (S.structural_bytes decoded);
  check Alcotest.int "same value bytes" (S.value_bytes syn)
    (S.value_bytes decoded);
  check Alcotest.bool "valid" true (S.validate decoded = Ok ());
  same_estimates doc syn decoded

let test_codec_roundtrip_compressed () =
  (* compressed summaries (including TEXT buckets) round-trip too *)
  let doc = Xc_data.Imdb.generate ~seed:21 ~n_movies:150 () in
  let reference = Reference.build ~min_extent:8 doc in
  let syn = Build.run (Build.params ~bstr_kb:3 ~bval_kb:20 ()) reference in
  let decoded = Xc_core.Codec.of_string_exn (Xc_core.Codec.to_string syn) in
  check Alcotest.int "same value bytes" (S.value_bytes syn)
    (S.value_bytes decoded);
  List.iter
    (fun q ->
      checkf ("estimate: " ^ q)
        (Estimate.selectivity syn (Xc_twig.Twig_parse.parse q))
        (Estimate.selectivity decoded (Xc_twig.Twig_parse.parse q)))
    [ "//movie[plot ftcontains(xml)]"; "//movie[year > 1990]/title";
      "//actor/name[. contains(ar)]"; "//movie/cast/actor" ]

let test_codec_file_io () =
  let doc = sample_doc () in
  let syn = Synopsis.freeze (Reference.build doc) in
  let path = Filename.temp_file "xcluster" ".syn" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Xc_core.Codec.save_exn path syn;
      let loaded = Xc_core.Codec.load_exn path in
      check Alcotest.int "same nodes" (S.n_nodes syn) (S.n_nodes loaded))

let test_codec_rejects_garbage () =
  (match Xc_core.Codec.of_string "not a synopsis" with
  | Error Xc_core.Codec.Bad_magic -> ()
  | Error e -> Alcotest.failf "expected bad magic, got %s" (Xc_core.Codec.error_to_string e)
  | Ok _ -> Alcotest.fail "expected bad magic failure");
  let doc = sample_doc () in
  let good = Xc_core.Codec.to_string (Synopsis.freeze (Reference.build doc)) in
  let truncated = String.sub good 0 (String.length good / 2) in
  match Xc_core.Codec.of_string truncated with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected truncation failure"

let () =
  Alcotest.run ~and_exit:false "xc_core"
    [ ( "synopsis",
        [ Alcotest.test_case "edges" `Quick test_synopsis_edges;
          Alcotest.test_case "levels" `Quick test_synopsis_levels;
          Alcotest.test_case "copy" `Quick test_synopsis_copy_independent;
          Alcotest.test_case "validate" `Quick test_synopsis_validate_catches;
          Alcotest.test_case "freeze" `Quick test_freeze_matches_builder;
          Alcotest.test_case "freeze needs root" `Quick test_freeze_requires_root ] );
      ( "reference",
        [ Alcotest.test_case "counts" `Quick test_reference_counts;
          Alcotest.test_case "struct exact" `Quick test_reference_estimates_struct_exactly;
          Alcotest.test_case "value estimates" `Quick test_reference_value_estimates;
          Alcotest.test_case "tag only" `Quick test_tag_only;
          Alcotest.test_case "min extent pools" `Quick test_reference_min_extent_pools ] );
      ( "merge",
        [ Alcotest.test_case "counts+edges" `Quick test_merge_counts_and_edges;
          Alcotest.test_case "merge-to-tag-only" `Quick test_merge_to_tag_only_equivalence;
          Alcotest.test_case "incompatible" `Quick test_merge_incompatible_rejected;
          Alcotest.test_case "self loop" `Quick test_merge_self_loop ] );
      ( "delta",
        [ Alcotest.test_case "identical zero" `Quick test_delta_identical_is_zero;
          Alcotest.test_case "dissimilarity" `Quick test_delta_grows_with_dissimilarity;
          Alcotest.test_case "structural" `Quick test_delta_structural_component;
          Alcotest.test_case "compression" `Quick test_compression_delta ] );
      ( "pool",
        [ Alcotest.test_case "compatible pairs" `Quick test_pool_only_compatible_pairs;
          Alcotest.test_case "level filter" `Quick test_pool_respects_level;
          Alcotest.test_case "marginal order" `Quick test_pool_orders_by_marginal_loss ] );
      ( "build",
        [ Alcotest.test_case "meets budgets" `Slow test_build_meets_budgets;
          Alcotest.test_case "extent mass" `Slow test_build_extent_mass_invariant;
          Alcotest.test_case "sweep prefix" `Slow test_build_sweep_prefix_consistency;
          Alcotest.test_case "correlation beats tag-only" `Quick
            test_structure_value_correlation_beats_tag_only ] );
      ( "codec",
        [ Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip;
          Alcotest.test_case "roundtrip compressed" `Quick test_codec_roundtrip_compressed;
          Alcotest.test_case "file io" `Quick test_codec_file_io;
          Alcotest.test_case "rejects garbage" `Quick test_codec_rejects_garbage ] );
      ( "estimate",
        [ Alcotest.test_case "reach" `Quick test_estimate_reach;
          Alcotest.test_case "wildcards+desc" `Quick test_estimate_wildcards_and_desc;
          Alcotest.test_case "type mismatch" `Quick test_estimate_predicate_type_mismatch_zero;
          Alcotest.test_case "cyclic terminates" `Quick test_estimate_cyclic_synopsis_terminates ] ) ]


(* ---- Boolean full-text estimation + auto split (appended suite) --------- *)

let test_estimate_ft_any_excludes () =
  let doc = sample_doc () in
  let syn = Synopsis.freeze (Reference.build ~min_extent:1 doc) in
  checkf2 "ftany" (exact doc "//paper[abs ftany(xml, tree)]")
    (est syn "//paper[abs ftany(xml, tree)]");
  checkf2 "ftexcludes none match" (exact doc "//paper[abs ftexcludes(xml)]")
    (est syn "//paper[abs ftexcludes(xml)]");
  (* disjunction never below the max single-term estimate *)
  check Alcotest.bool "any >= single" true
    (est syn "//paper[abs ftany(tree, count)]" >= est syn "//paper[abs ftcontains(tree)]" -. 1e-9)

let test_auto_split () =
  let doc = Xc_data.Imdb.generate ~seed:41 ~n_movies:400 () in
  let reference = Reference.build ~min_extent:8 doc in
  let spec = { Xc_twig.Workload.default_spec with n_queries = 30 } in
  let wl = Xc_twig.Workload.generate ~spec doc in
  let sanity = Xc_twig.Workload.sanity_bound wl in
  let sample syn =
    Xc_exp.Error_metric.overall_relative ~sanity
      (Xc_exp.Error_metric.score (Estimate.selectivity syn) wl)
  in
  let params, best = Build.auto_split ~total_kb:40 ~sample reference in
  (* the winner respects the unified budget *)
  check Alcotest.bool "total budget" true
    (params.Build.bstr + params.Build.bval <= Size.kb 40);
  check Alcotest.bool "built within structural budget" true
    (S.structural_bytes best <= max params.Build.bstr (S.structural_bytes best));
  (* and is at least as good as the extreme all-value split *)
  let all_value = Build.run (Build.params ~bstr_kb:0 ~bval_kb:40 ()) reference in
  check Alcotest.bool "no worse than 0-structure" true
    (sample best <= sample all_value +. 1e-9)

let () =
  Alcotest.run "xc_core_extensions"
    [ ( "extensions",
        [ Alcotest.test_case "ftany/ftexcludes estimate" `Quick test_estimate_ft_any_excludes;
          Alcotest.test_case "auto split" `Slow test_auto_split ] ) ]
