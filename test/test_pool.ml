(* Tests for the incremental construction substrate of this PR: the
   Builder's group index (vs a from-scratch regrouping, across random
   merge sequences and full builds), the candidate-evaluation and
   member-scan bounds of push_neighbors (no full node-table iteration),
   pop-time candidate revalidation, and bit-identical sealed output
   across scoring-worker counts (XC_DOMAINS determinism). *)

open Xc_xml
module Synopsis = Xc_core.Synopsis
module B = Synopsis.Builder
module Levels = Synopsis.Levels
module Pool = Xc_core.Pool
module Merge = Xc_core.Merge
module Build = Xc_core.Build
module Reference = Xc_core.Reference
module Codec = Xc_core.Codec
module Metrics = Xc_util.Metrics
module Vs = Xc_vsumm.Value_summary

let check = Alcotest.check

let add syn label count =
  B.add_node syn ~label:(Label.of_string label) ~vtype:Value.Tnull ~count
    ~vsumm:Vs.vnone

(* ---- group index vs from-scratch regrouping ------------------------------- *)

(* the ground truth the index must match: group every live node by key,
   straight off the node table *)
let scratch_grouping syn =
  let tbl = Hashtbl.create 64 in
  B.iter
    (fun node ->
      let key = B.group_key node in
      let cur = Option.value ~default:[] (Hashtbl.find_opt tbl key) in
      Hashtbl.replace tbl key (B.sid node :: cur))
    syn;
  Hashtbl.fold (fun key sids acc -> (key, List.sort Int.compare sids) :: acc) tbl []
  |> List.sort compare

let index_grouping syn =
  List.map
    (fun key ->
      let ms = ref [] in
      B.iter_group syn key (fun node -> ms := B.sid node :: !ms);
      (key, List.sort Int.compare !ms))
    (B.group_keys syn)
  |> List.sort compare

let check_groupings_equal msg syn =
  let pp_group ppf ((l, t, k), sids) =
    Format.fprintf ppf "(%d,%d,%d)->[%s]" l t k
      (String.concat ";" (List.map string_of_int sids))
  in
  let grouping = Alcotest.(list (testable pp_group ( = ))) in
  check grouping msg (scratch_grouping syn) (index_grouping syn)

let test_group_index_random_merges () =
  let doc = Xc_data.Imdb.generate ~seed:7 ~n_movies:60 () in
  let syn = Reference.build ~min_extent:2 doc in
  check_groupings_equal "fresh reference" syn;
  let rng = Random.State.make [| 42 |] in
  let merges = ref 0 in
  (* randomized merge sequence: pick any group with >= 2 members, merge
     two random members, re-check the index every few steps *)
  let continue = ref true in
  while !continue && !merges < 60 do
    let groups =
      List.filter (fun (_, sids) -> List.length sids >= 2) (index_grouping syn)
    in
    match groups with
    | [] -> continue := false
    | groups ->
      let _, sids = List.nth groups (Random.State.int rng (List.length groups)) in
      let arr = Array.of_list sids in
      let i = Random.State.int rng (Array.length arr) in
      let j = (i + 1 + Random.State.int rng (Array.length arr - 1))
              mod Array.length arr in
      ignore (Merge.apply syn arr.(i) arr.(j));
      incr merges;
      if !merges mod 7 = 0 then check_groupings_equal "mid-sequence" syn
  done;
  check Alcotest.bool "performed merges" true (!merges > 10);
  check_groupings_equal "after random merges" syn;
  check Alcotest.bool "builder valid" true (B.validate syn = Ok ())

let test_group_index_after_full_build () =
  (* a full XCLUSTERBUILD exercises merges AND phase-2 set_vsumm *)
  let doc = Xc_data.Xmark.generate ~seed:3 ~scale:0.01 () in
  let reference = Reference.build ~min_extent:2 doc in
  let built = Build.run_builder (Build.budget ~bstr_kb:2 ~bval_kb:16 ()) reference in
  check_groupings_equal "after full build" built;
  check Alcotest.bool "builder valid" true (B.validate built = Ok ())

(* ---- push_neighbors does bounded work -------------------------------------- *)

let test_push_neighbors_bounded () =
  let syn = B.create ~doc_height:2 in
  let root = add syn "r" 1 in
  B.set_root syn (B.sid root);
  let group_size = 12 in
  let mergeable =
    List.init group_size (fun i ->
        let n = add syn "a" (10 + i) in
        B.set_edge syn ~parent:(B.sid root) ~child:(B.sid n) 1.0;
        n)
  in
  (* a large population the neighbor lookup must never touch *)
  for _ = 1 to 3000 do
    let n = add syn "z" 5 in
    B.set_edge syn ~parent:(B.sid root) ~child:(B.sid n) 1.0
  done;
  let levels = Levels.compute syn in
  let node = List.hd mergeable in
  let counter name = Metrics.counter_value Metrics.global name in
  (* indexed path: work bounded by the group, not the node table *)
  let evals0 = counter "pool.cand_evals" and scanned0 = counter "pool.scanned" in
  let heap = Xc_util.Heap.create () in
  Pool.push_neighbors Pool.default_config syn heap ~levels ~level:99 node;
  let evals = counter "pool.cand_evals" - evals0 in
  let scanned = counter "pool.scanned" - scanned0 in
  check Alcotest.bool "pushed some candidates" true (Xc_util.Heap.length heap > 0);
  check Alcotest.bool "cand evals bounded by neighbor_k" true
    (evals <= Pool.default_config.Pool.neighbor_k);
  (* the group is smaller than neighbor_k, so the count-window walk
     visits every member — but never leaves the group *)
  check Alcotest.int "scans only the group, not all nodes" group_size scanned;
  (* on a group much larger than neighbor_k, the sorted count window
     stops early instead of scanning all members *)
  let big = 200 in
  let bigs =
    List.init big (fun i ->
        let n = add syn "b" (100 + i) in
        B.set_edge syn ~parent:(B.sid root) ~child:(B.sid n) 1.0;
        n)
  in
  let levels = Levels.compute syn in
  let mid = List.nth bigs (big / 2) in
  let scanned0 = counter "pool.scanned" in
  let heap = Xc_util.Heap.create () in
  Pool.push_neighbors Pool.default_config syn heap ~levels ~level:99 mid;
  let scanned_big = counter "pool.scanned" - scanned0 in
  let k = Pool.default_config.Pool.neighbor_k in
  check Alcotest.bool "count window stops early on large groups" true
    (scanned_big < big && scanned_big <= (2 * (k + 1)) + 1);
  (* the full-scan baseline really does visit the whole node table *)
  let scanned0 = counter "pool.scanned" in
  let heap = Xc_util.Heap.create () in
  Pool.push_neighbors
    { Pool.default_config with Pool.full_scan = true }
    syn heap ~levels ~level:99 node;
  let scanned_full = counter "pool.scanned" - scanned0 in
  check Alcotest.int "full scan visits every node" (B.n_nodes syn) scanned_full

(* ---- pop-time revalidation -------------------------------------------------- *)

let test_pop_valid_revalidates () =
  let syn = B.create ~doc_height:3 in
  let r = add syn "r" 1 in
  B.set_root syn (B.sid r);
  let u = add syn "a" 8 and v = add syn "a" 12 in
  let x = add syn "c" 4 and y = add syn "c" 4 in
  B.set_edge syn ~parent:(B.sid r) ~child:(B.sid u) 1.0;
  B.set_edge syn ~parent:(B.sid r) ~child:(B.sid v) 1.0;
  B.set_edge syn ~parent:(B.sid u) ~child:(B.sid x) 1.0;
  B.set_edge syn ~parent:(B.sid u) ~child:(B.sid y) 1.0;
  B.set_edge syn ~parent:(B.sid v) ~child:(B.sid x) 1.0;
  B.set_edge syn ~parent:(B.sid v) ~child:(B.sid y) 1.0;
  (* merging x and y will collapse {x, y} to {w} under BOTH u and v:
     the (u, v) entry's saved drops from node + 3 edges (4 child edges
     deduplicating to 2, one shared parent) to node + 2 edges *)
  let levels = Levels.compute syn in
  let cfg = Pool.default_config in
  let pool = Pool.build cfg syn ~levels ~level:99 in
  (* merge x and y behind the pool's back: u/v both survive, but their
     child edges change, so the pooled (u, v) entry's saved is stale *)
  ignore (Merge.apply syn (B.sid x) (B.sid y));
  let rescored0 = Metrics.counter_value Metrics.global "pool.rescored" in
  let rec drain () =
    match Pool.pop_valid cfg syn pool with
    | None -> ()
    | Some c ->
      let cu = B.find syn c.Pool.u and cv = B.find syn c.Pool.v in
      check Alcotest.int "popped saved matches current graph"
        (Merge.saved_bytes syn cu cv) c.Pool.saved;
      drain ()
  in
  drain ();
  let rescored = Metrics.counter_value Metrics.global "pool.rescored" - rescored0 in
  check Alcotest.bool "stale entry was rescored" true (rescored > 0)

(* ---- XC_DOMAINS determinism -------------------------------------------------- *)

(* the wire format covers every array of the sealed form, so string
   equality of encodings is bit-identity of the synopses *)
let sealed_equal a b = String.equal (Codec.to_string a) (Codec.to_string b)

let test_domains_bit_identical () =
  let datasets =
    [ ("imdb", lazy (Xc_data.Imdb.generate ~seed:3 ~n_movies:60 ()));
      ("xmark", lazy (Xc_data.Xmark.generate ~seed:4 ~scale:0.012 ()));
      ("dblp", lazy (Xc_data.Dblp.generate ~seed:5 ~n_authors:70 ())) ]
  in
  List.iter
    (fun (name, doc) ->
      let reference = Reference.build ~min_extent:2 (Lazy.force doc) in
      let build pool =
        Build.run (Build.budget ~pool ~bstr_kb:2 ~bval_kb:16 ()) reference
      in
      let s1 = build { Pool.default_config with Pool.domains = 1 } in
      let s4 = build { Pool.default_config with Pool.domains = 4 } in
      let scan =
        build { Pool.default_config with Pool.domains = 1; full_scan = true }
      in
      check Alcotest.bool (name ^ ": 1 vs 4 domains bit-identical") true
        (sealed_equal s1 s4);
      check Alcotest.bool (name ^ ": indexed vs full-scan bit-identical") true
        (sealed_equal s1 scan))
    datasets

let () =
  Alcotest.run "xc_pool"
    [ ( "group-index",
        [ Alcotest.test_case "random merges" `Quick test_group_index_random_merges;
          Alcotest.test_case "full build" `Quick test_group_index_after_full_build ] );
      ( "bounded-work",
        [ Alcotest.test_case "push_neighbors" `Quick test_push_neighbors_bounded ] );
      ( "revalidation",
        [ Alcotest.test_case "pop rescored" `Quick test_pop_valid_revalidates ] );
      ( "determinism",
        [ Alcotest.test_case "XC_DOMAINS" `Quick test_domains_bit_identical ] ) ]
