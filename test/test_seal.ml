(* Focused tests for the Builder/Sealed split: Merge.apply self-edge
   remapping in every direction, saved_bytes agreement with the actual
   structural-byte delta, the budget_split rounding clamp, and CSR
   well-formedness of frozen synopses. *)

open Xc_xml
module Synopsis = Xc_core.Synopsis
module B = Synopsis.Builder
module S = Synopsis.Sealed
module Merge = Xc_core.Merge
module Build = Xc_core.Build
module Reference = Xc_core.Reference
module Size = Xc_core.Size
module Vs = Xc_vsumm.Value_summary

let check = Alcotest.check
let checkf msg = Alcotest.check (Alcotest.float 1e-9) msg

let add syn label count =
  B.add_node syn ~label:(Label.of_string label) ~vtype:Value.Tnull ~count
    ~vsumm:Vs.vnone

(* ---- Merge.apply self-edge remapping ------------------------------------- *)

(* u is a parent of v: merging must turn the u->v edge into a w->w
   self-loop carrying u's share of the child mass *)
let test_merge_u_parent_of_v () =
  let syn = B.create ~doc_height:3 in
  let r = add syn "r" 1 and u = add syn "a" 2 and v = add syn "a" 6 in
  B.set_root syn (B.sid r);
  B.set_edge syn ~parent:(B.sid r) ~child:(B.sid u) 2.0;
  B.set_edge syn ~parent:(B.sid u) ~child:(B.sid v) 3.0;
  let w = Merge.apply syn (B.sid u) (B.sid v) in
  check Alcotest.bool "valid" true (B.validate syn = Ok ());
  check Alcotest.int "count adds" 8 (B.count w);
  (* count(w,w) = (2*3 + 6*0) / 8 *)
  checkf "self loop" 0.75 (B.edge_count syn ~parent:(B.sid w) ~child:(B.sid w));
  checkf "incoming kept" 2.0 (B.edge_count syn ~parent:(B.sid r) ~child:(B.sid w))

(* v is a parent of u: the same remap must work when the merge argument
   order is reversed relative to the edge direction *)
let test_merge_v_parent_of_u () =
  let syn = B.create ~doc_height:3 in
  let r = add syn "r" 1 and u = add syn "a" 6 and v = add syn "a" 2 in
  B.set_root syn (B.sid r);
  B.set_edge syn ~parent:(B.sid r) ~child:(B.sid v) 2.0;
  B.set_edge syn ~parent:(B.sid v) ~child:(B.sid u) 3.0;
  let w = Merge.apply syn (B.sid u) (B.sid v) in
  check Alcotest.bool "valid" true (B.validate syn = Ok ());
  check Alcotest.int "count adds" 8 (B.count w);
  (* count(w,w) = (6*0 + 2*3) / 8 *)
  checkf "self loop" 0.75 (B.edge_count syn ~parent:(B.sid w) ~child:(B.sid w));
  checkf "incoming kept" 2.0 (B.edge_count syn ~parent:(B.sid r) ~child:(B.sid w))

(* u already carries a self-loop: it must fold into w's self-loop
   together with the cross edges *)
let test_merge_with_existing_self_loop () =
  let syn = B.create ~doc_height:4 in
  let r = add syn "r" 1 and u = add syn "a" 4 and v = add syn "a" 4 in
  B.set_root syn (B.sid r);
  B.set_edge syn ~parent:(B.sid r) ~child:(B.sid u) 4.0;
  B.set_edge syn ~parent:(B.sid u) ~child:(B.sid u) 0.5;
  B.set_edge syn ~parent:(B.sid u) ~child:(B.sid v) 1.0;
  let w = Merge.apply syn (B.sid u) (B.sid v) in
  check Alcotest.bool "valid" true (B.validate syn = Ok ());
  (* count(w,w) = (4*(0.5+1.0) + 4*0) / 8 *)
  checkf "folded self loop" 0.75
    (B.edge_count syn ~parent:(B.sid w) ~child:(B.sid w));
  (* one node and one self-edge remain below the root *)
  check Alcotest.int "n_nodes" 2 (B.n_nodes syn);
  check Alcotest.int "n_edges" 2 (B.n_edges syn)

(* ---- saved_bytes vs the actual structural delta --------------------------- *)

let saved_bytes_matches syn u v =
  let predicted = Merge.saved_bytes syn u v in
  let before = B.structural_bytes syn in
  ignore (Merge.apply syn (B.sid u) (B.sid v));
  check Alcotest.int "saved_bytes exact" (before - predicted)
    (B.structural_bytes syn)

let test_saved_bytes_self_edges () =
  (* parent-child merge: the u->v edge disappears into the self-loop *)
  let syn = B.create ~doc_height:3 in
  let r = add syn "r" 1 and u = add syn "a" 2 and v = add syn "a" 6 in
  B.set_root syn (B.sid r);
  B.set_edge syn ~parent:(B.sid r) ~child:(B.sid u) 2.0;
  B.set_edge syn ~parent:(B.sid u) ~child:(B.sid v) 3.0;
  saved_bytes_matches syn u v

let test_saved_bytes_shared_neighbors () =
  (* u and v share a parent and a child; both pairs of duplicate edges
     must be counted once each in the prediction *)
  let syn = B.create ~doc_height:3 in
  let r = add syn "r" 1 and u = add syn "a" 2 and v = add syn "a" 6 in
  let c = add syn "c" 10 in
  B.set_root syn (B.sid r);
  B.set_edge syn ~parent:(B.sid r) ~child:(B.sid u) 2.0;
  B.set_edge syn ~parent:(B.sid r) ~child:(B.sid v) 6.0;
  B.set_edge syn ~parent:(B.sid u) ~child:(B.sid c) 1.0;
  B.set_edge syn ~parent:(B.sid v) ~child:(B.sid c) 1.5;
  saved_bytes_matches syn u v

let test_saved_bytes_disjoint_neighbors () =
  (* no shared neighbors: only the node record is saved *)
  let syn = B.create ~doc_height:3 in
  let r = add syn "r" 1 and u = add syn "a" 2 and v = add syn "a" 6 in
  let c = add syn "c" 10 and d = add syn "d" 12 in
  B.set_root syn (B.sid r);
  B.set_edge syn ~parent:(B.sid r) ~child:(B.sid u) 2.0;
  B.set_edge syn ~parent:(B.sid r) ~child:(B.sid v) 6.0;
  B.set_edge syn ~parent:(B.sid u) ~child:(B.sid c) 1.0;
  B.set_edge syn ~parent:(B.sid v) ~child:(B.sid d) 1.5;
  (* shared parent r merges two edges into one; c and d edges survive *)
  saved_bytes_matches syn u v

(* ---- budget_split clamp ---------------------------------------------------- *)

let test_budget_split_ratio_one () =
  (* ratio 1.0 with a small budget must not round bstr above the total
     and drive bval negative *)
  List.iter
    (fun total_kb ->
      let b = Build.budget_split ~total_kb ~ratio:1.0 () in
      check Alcotest.bool "bstr within total" true (b.Build.bstr <= Size.kb total_kb);
      check Alcotest.bool "bval nonnegative" true (b.Build.bval >= 0);
      check Alcotest.int "split covers total" (Size.kb total_kb)
        (b.Build.bstr + b.Build.bval))
    [ 1; 3; 7; 200 ]

let test_budget_split_extremes_and_interior () =
  let b0 = Build.budget_split ~total_kb:10 ~ratio:0.0 () in
  check Alcotest.int "all value" 0 b0.Build.bstr;
  check Alcotest.int "bval full" (Size.kb 10) b0.Build.bval;
  let bi = Build.budget_split ~total_kb:10 ~ratio:0.35 () in
  check Alcotest.bool "interior bstr" true (bi.Build.bstr > 0 && bi.Build.bstr < Size.kb 10);
  check Alcotest.int "interior covers" (Size.kb 10) (bi.Build.bstr + bi.Build.bval);
  (* out-of-range inputs are rejected outright *)
  Alcotest.check_raises "ratio beyond 1"
    (Invalid_argument "Build.budget_split: ratio outside [0,1]") (fun () ->
      ignore (Build.budget_split ~total_kb:5 ~ratio:1.4 ()));
  Alcotest.check_raises "zero total"
    (Invalid_argument "Build.budget_split: non-positive budget") (fun () ->
      ignore (Build.budget_split ~total_kb:0 ~ratio:0.5 ()))

(* ---- CSR well-formedness of frozen synopses -------------------------------- *)

let test_freeze_csr_well_formed () =
  List.iter
    (fun seed ->
      let doc = Xc_data.Imdb.generate ~seed ~n_movies:80 () in
      let builder = Reference.build ~min_extent:2 doc in
      let sealed = Synopsis.freeze builder in
      (match S.validate sealed with
      | Ok () -> ()
      | Error e -> Alcotest.failf "sealed reference invalid: %s" e);
      (* sealed mirrors the builder it came from *)
      check Alcotest.int "nodes" (B.n_nodes builder) (S.n_nodes sealed);
      check Alcotest.int "edges" (B.n_edges builder) (S.n_edges sealed);
      check Alcotest.int "value bytes" (B.value_bytes builder) (S.value_bytes sealed);
      (* every builder edge is present with the same average *)
      B.iter
        (fun n ->
          B.succ builder n (fun child avg ->
              checkf "edge avg" avg
                (S.edge_count sealed ~parent:(B.sid n) ~child)))
        builder;
      (* adjacency rows are sorted strictly ascending *)
      let ok = ref true in
      let last = ref (-1) in
      for i = 0 to S.n_nodes sealed - 1 do
        last := -1;
        List.iter
          (fun (child, _) ->
            if child <= !last then ok := false;
            last := child)
          (S.succ sealed (S.sid_of_index sealed i))
      done;
      check Alcotest.bool "rows sorted" true !ok)
    [ 1; 2; 3 ]

let test_freeze_after_build_csr () =
  let doc = Xc_data.Xmark.generate ~seed:5 ~scale:0.01 () in
  let reference = Reference.build ~min_extent:2 doc in
  let sealed = Build.run (Build.params ~bstr_kb:2 ~bval_kb:16 ()) reference in
  check Alcotest.bool "compressed sealed valid" true (S.validate sealed = Ok ())

let () =
  Alcotest.run "xc_seal"
    [ ( "merge-self-edges",
        [ Alcotest.test_case "u parent of v" `Quick test_merge_u_parent_of_v;
          Alcotest.test_case "v parent of u" `Quick test_merge_v_parent_of_u;
          Alcotest.test_case "existing self loop" `Quick test_merge_with_existing_self_loop ] );
      ( "saved-bytes",
        [ Alcotest.test_case "self edges" `Quick test_saved_bytes_self_edges;
          Alcotest.test_case "shared neighbors" `Quick test_saved_bytes_shared_neighbors;
          Alcotest.test_case "disjoint neighbors" `Quick test_saved_bytes_disjoint_neighbors ] );
      ( "budget-split",
        [ Alcotest.test_case "ratio one clamps" `Quick test_budget_split_ratio_one;
          Alcotest.test_case "extremes and interior" `Quick
            test_budget_split_extremes_and_interior ] );
      ( "csr",
        [ Alcotest.test_case "frozen references" `Quick test_freeze_csr_well_formed;
          Alcotest.test_case "frozen build output" `Quick test_freeze_after_build_csr ] ) ]
