(* Codec v3 (mmap-friendly, lazily verified) tests.

   Contracts under test, beyond the generic totality suite in
   test_fault.ml:

   - a v3 decode is bit-identical to a v2 decode of the same synopsis
     (same estimates, bit for bit), and v3 re-encoding is idempotent;
   - every single-bit flip in the prologue + section directory is
     detected, and sampled payload flips land in the right section's
     CRC;
   - a lazy (mapped) load of a damaged file either fails at admission
     (eager-group sections) or raises Codec.Lazy_failure at the first
     access that needed the damaged section — and the serve engine
     contains that into a typed error, never a crash;
   - fault storms at the mmap-path sites (codec.map,
     codec.section_verify) never produce an untyped failure;
   - v1 and v2 files still decode to the same estimates;
   - the per-section report localizes damage and reflects lazy mode. *)

module Codec = Xc_core.Codec
module S = Xc_core.Synopsis.Sealed
module Synopsis = Xc_core.Synopsis
module Reference = Xc_core.Reference
module Build = Xc_core.Build
module Fault = Xc_util.Fault
module Safe_io = Xc_util.Safe_io

let check = Alcotest.check

let datasets =
  [ ( "imdb",
      lazy
        (let doc = Xc_data.Imdb.generate ~seed:81 ~n_movies:40 () in
         let reference = Reference.build ~min_extent:4 doc in
         Build.run (Build.params ~bstr_kb:3 ~bval_kb:15 ()) reference) );
    ( "xmark",
      lazy
        (let doc = Xc_data.Xmark.generate ~seed:82 ~scale:0.01 () in
         Synopsis.freeze (Reference.build ~min_extent:4 doc)) );
    ( "dblp",
      lazy
        (let doc = Xc_data.Dblp.generate ~seed:83 ~n_authors:40 () in
         Synopsis.freeze (Reference.build ~min_extent:4 doc)) ) ]

let force name = Lazy.force (List.assoc name datasets)

let queries_of = function
  | "imdb" -> [ "//movie/year[. > 1990]"; "//movie[year > 1990]"; "//movie/title" ]
  | "xmark" -> [ "//item"; "//person/name"; "//open_auction/bidder" ]
  | "dblp" -> [ "//article/title"; "//author"; "//*" ]
  | _ -> assert false

let est syn q = Xc_core.Estimate.selectivity syn (Xc_twig.Twig_parse.parse q)

let check_bits name a b =
  if Int64.bits_of_float a <> Int64.bits_of_float b then
    Alcotest.failf "%s: %h is not bit-identical to %h" name a b

let decode_exn what s =
  match Codec.of_string s with
  | Ok syn -> syn
  | Error e -> Alcotest.failf "%s: decode failed: %s" what (Codec.error_to_string e)

(* ---- v3 vs v2: bit-identical estimates ---------------------------------- *)

let test_v3_v2_bit_identity () =
  List.iter
    (fun (name, _) ->
      let syn = force name in
      let d3 = decode_exn (name ^ " v3") (Codec.to_string syn) in
      let d2 = decode_exn (name ^ " v2") (Codec.to_string_v2 syn) in
      check Alcotest.int (name ^ " nodes") (S.n_nodes d2) (S.n_nodes d3);
      check Alcotest.int (name ^ " edges") (S.n_edges d2) (S.n_edges d3);
      List.iter
        (fun q ->
          check_bits (name ^ " " ^ q) (est d2 q) (est d3 q);
          check_bits (name ^ " vs original " ^ q) (est syn q) (est d3 q))
        (queries_of name))
    datasets

let test_v3_reencode_idempotent () =
  List.iter
    (fun (name, _) ->
      let syn = force name in
      let encoded = Codec.to_string syn in
      let again = Codec.to_string (decode_exn name encoded) in
      check Alcotest.bool (name ^ ": v3 re-encoding is bit-exact") true
        (String.equal encoded again);
      (* decoding the v2 form and re-encoding as v3 reaches the same
         estimates (term-table reinterning may reorder bytes, so the
         guarantee is semantic, not byte-level) *)
      let via_v2 = decode_exn (name ^ " via v2") (Codec.to_string (decode_exn name (Codec.to_string_v2 syn))) in
      List.iter
        (fun q -> check_bits (name ^ " via v2 " ^ q) (est syn q) (est via_v2 q))
        (queries_of name))
    datasets

(* ---- bit flips ----------------------------------------------------------- *)

let flip s i bit =
  let b = Bytes.of_string s in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
  Bytes.unsafe_to_string b

(* the prologue (magic, version, section directory, directory CRC) is
   the part a lazy load trusts before returning Ok — every one of its
   bits must be load-bearing *)
let test_prologue_flips_detected () =
  let syn = force "imdb" in
  let good = Codec.to_string syn in
  let prologue = 448 in
  check Alcotest.bool "encoding longer than prologue" true (String.length good > prologue);
  for i = 0 to prologue - 1 do
    for bit = 0 to 7 do
      match Codec.of_string (flip good i bit) with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "flip of bit %d at prologue byte %d went undetected" bit i
      | exception exn ->
        Alcotest.failf "flip at prologue byte %d raised %s" i (Printexc.to_string exn)
    done
  done;
  (* sampled payload flips: each must fail, every section covered *)
  let i = ref prologue in
  while !i < String.length good do
    (match Codec.of_string (flip good !i (!i mod 8)) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "flip at payload byte %d went undetected" !i
    | exception exn ->
      Alcotest.failf "flip at payload byte %d raised %s" !i (Printexc.to_string exn));
    i := !i + 211
  done

(* ---- lazy-load containment ----------------------------------------------- *)

let read_exn path =
  match Safe_io.read path with
  | Ok s -> s
  | Error e -> Alcotest.failf "read %s failed: %s" path (Safe_io.error_to_string e)

let write_exn path s =
  match Safe_io.write_atomic path s with
  | Ok () -> ()
  | Error e -> Alcotest.failf "write %s failed: %s" path (Safe_io.error_to_string e)

let in_temp_dir f =
  let dir = Filename.temp_file "xc_codec_v3" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

(* section [k]'s (offset, length) from the encoded directory *)
let section_extent encoded k =
  let entry = 24 + (k * 32) in
  let get pos = Int64.to_int (String.get_int64_be encoded pos) in
  (get (entry + 8), get (entry + 16))

let section_index name =
  let names =
    [| "header"; "sids"; "counts"; "labels"; "vtypes"; "child_off"; "child_idx";
       "child_avg"; "parent_off"; "parent_idx"; "terms"; "vsumm_off"; "vsumm_blob" |]
  in
  let rec find i = if names.(i) = name then i else find (i + 1) in
  find 0

let test_lazy_deferred_failure () =
  in_temp_dir @@ fun dir ->
  let syn = force "imdb" in
  let path = Filename.concat dir "s.syn" in
  (match Codec.save path syn with
  | Ok () -> ()
  | Error e -> Alcotest.failf "save failed: %s" (Codec.error_to_string e));
  let good = read_exn path in
  let corrupt_section name =
    let off, len = section_extent good (section_index name) in
    check Alcotest.bool (name ^ " non-empty") true (len > 0);
    write_exn path (flip good (off + (len / 2)) 3)
  in
  (* damage in an eager-group section fails at admission *)
  corrupt_section "counts";
  (match Codec.load path with
  | Error (Codec.Checksum_mismatch { section = "counts"; _ }) -> ()
  | Error e -> Alcotest.failf "expected counts mismatch, got %s" (Codec.error_to_string e)
  | Ok _ -> Alcotest.fail "lazy load admitted a damaged eager section");
  (* damage in a CSR section defers to the first numeric access *)
  corrupt_section "child_idx";
  (match Codec.load path with
  | Error e -> Alcotest.failf "lazy load refused deferred damage: %s" (Codec.error_to_string e)
  | Ok lazy_syn -> (
    (match est lazy_syn "//movie/title" with
    | _ -> Alcotest.fail "estimate on damaged CSR section succeeded"
    | exception Codec.Lazy_failure (Codec.Checksum_mismatch { section = "child_idx"; _ })
      -> ()
    | exception exn ->
      Alcotest.failf "expected Lazy_failure, got %s" (Printexc.to_string exn));
    (* the serve engine contains the same failure into a typed error *)
    match
      Xc_serve.Engine.estimate_result lazy_syn (Xc_twig.Twig_parse.parse "//movie/title")
    with
    | Error (Xc_serve.Error.Unavailable _) -> ()
    | Error e -> Alcotest.failf "expected Unavailable, got %s" (Xc_serve.Error.to_string e)
    | Ok _ -> Alcotest.fail "engine served an estimate off a damaged section"
    | exception exn ->
      Alcotest.failf "engine leaked %s" (Printexc.to_string exn)));
  (* damage in the value-summary blob defers to the first value read:
     structural queries still answer, a value predicate trips *)
  corrupt_section "vsumm_blob";
  (match Codec.load path with
  | Error e -> Alcotest.failf "lazy load refused vsumm damage: %s" (Codec.error_to_string e)
  | Ok lazy_syn -> (
    check_bits "structural estimate unaffected" (est syn "//movie/title")
      (est lazy_syn "//movie/title");
    match est lazy_syn "//movie[year > 1990]" with
    | _ -> Alcotest.fail "value predicate on damaged vsumm blob succeeded"
    | exception Codec.Lazy_failure _ -> ()
    | exception exn ->
      Alcotest.failf "expected Lazy_failure, got %s" (Printexc.to_string exn)));
  (* eager mode refuses all three up front *)
  (match Codec.load ~eager:true path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "eager load admitted a damaged file");
  (* and an undamaged file answers bit-identically through the map *)
  write_exn path good;
  match Codec.load path with
  | Error e -> Alcotest.failf "clean lazy load failed: %s" (Codec.error_to_string e)
  | Ok lazy_syn ->
    List.iter
      (fun q -> check_bits ("mapped " ^ q) (est syn q) (est lazy_syn q))
      (queries_of "imdb")

(* ---- fault storms at the mmap sites -------------------------------------- *)

let with_faults cfg f =
  let previous = Fault.current () in
  Fault.configure (Some cfg);
  Fun.protect ~finally:(fun () -> Fault.configure previous) f

let faults ?(sites = []) ?(prob = 1.0) kinds = { Fault.seed = 7; prob; kinds; sites }

let test_fault_storm_mmap_sites () =
  in_temp_dir @@ fun dir ->
  let syn = force "imdb" in
  let path = Filename.concat dir "s.syn" in
  (match Codec.save path syn with
  | Ok () -> ()
  | Error e -> Alcotest.failf "save failed: %s" (Codec.error_to_string e));
  (* a certain failure at the map site is a typed Io error *)
  with_faults (faults [ Fault.Eio ] ~sites:[ "codec.map" ]) (fun () ->
      match Codec.load path with
      | Error (Codec.Io _) -> ()
      | Error e -> Alcotest.failf "expected Io, got %s" (Codec.error_to_string e)
      | Ok _ -> Alcotest.fail "load succeeded under a certain map fault"
      | exception exn -> Alcotest.failf "load raised %s" (Printexc.to_string exn));
  (* storm across every mmap-path site: loads are total, and a loaded
     synopsis either answers correctly or raises Lazy_failure at the
     deferred verification — nothing else *)
  let expected = est syn "//movie/title" in
  with_faults
    (faults ~prob:0.5
       [ Fault.Truncate; Fault.Bit_flip; Fault.Eio ]
       ~sites:[ "codec.map"; "codec.load"; "codec.section_verify" ])
    (fun () ->
      for i = 1 to 60 do
        match Codec.load path with
        | Error _ -> ()
        | exception exn ->
          Alcotest.failf "iteration %d: load raised %s" i (Printexc.to_string exn)
        | Ok loaded -> (
          match est loaded "//movie/title" with
          | v -> check_bits "storm estimate" expected v
          | exception Codec.Lazy_failure _ -> ()
          | exception exn ->
            Alcotest.failf "iteration %d: estimate raised %s" i (Printexc.to_string exn))
      done);
  (* faults cleared: the file is intact and maps cleanly *)
  match Codec.load path with
  | Ok loaded -> check_bits "post-storm estimate" expected (est loaded "//movie/title")
  | Error e -> Alcotest.failf "post-storm load failed: %s" (Codec.error_to_string e)

(* ---- back-compat ---------------------------------------------------------- *)

let test_old_versions_decode () =
  let syn = force "imdb" in
  List.iter
    (fun (what, version, encoded) ->
      let decoded = decode_exn what encoded in
      List.iter
        (fun q -> check_bits (what ^ " " ^ q) (est syn q) (est decoded q))
        (queries_of "imdb");
      match Codec.verify_string encoded with
      | Ok info ->
        check Alcotest.int (what ^ " version") version info.Codec.i_version;
        check Alcotest.bool (what ^ " checksummed") (version > 1) info.Codec.i_checksummed
      | Error e -> Alcotest.failf "%s verify failed: %s" what (Codec.error_to_string e))
    [ ("v1", 1, Codec.to_string_v1 syn);
      ("v2", 2, Codec.to_string_v2 syn);
      ("v3", 3, Codec.to_string syn) ]

(* ---- section report ------------------------------------------------------- *)

let test_sections_report () =
  let syn = force "dblp" in
  let v3 = Codec.to_string syn in
  (match Codec.sections_string v3 with
  | Error e -> Alcotest.failf "sections failed: %s" (Codec.error_to_string e)
  | Ok secs ->
    check Alcotest.int "13 sections" 13 (List.length secs);
    List.iteri
      (fun i s ->
        check Alcotest.string "section name"
          [| "header"; "sids"; "counts"; "labels"; "vtypes"; "child_off";
             "child_idx"; "child_avg"; "parent_off"; "parent_idx"; "terms";
             "vsumm_off"; "vsumm_blob" |].(i)
          s.Codec.sec_name;
        check Alcotest.(option bool) ("crc ok: " ^ s.Codec.sec_name) (Some true)
          s.Codec.sec_crc_ok)
      secs);
  (* lazy mode reports only the admission-time check *)
  (match Codec.sections_string ~eager:false v3 with
  | Error e -> Alcotest.failf "lazy sections failed: %s" (Codec.error_to_string e)
  | Ok secs ->
    List.iteri
      (fun i s ->
        check Alcotest.(option bool) ("lazy crc: " ^ s.Codec.sec_name)
          (if i = 0 then Some true else None)
          s.Codec.sec_crc_ok)
      secs);
  (* damage is localized, and the report does not stop at the first hit *)
  let off, len = section_extent v3 (section_index "child_avg") in
  match Codec.sections_string (flip v3 (off + (len / 2)) 5) with
  | Error e -> Alcotest.failf "sections on damage failed: %s" (Codec.error_to_string e)
  | Ok secs ->
    List.iter
      (fun s ->
        check Alcotest.(option bool) ("localized: " ^ s.Codec.sec_name)
          (Some (s.Codec.sec_name <> "child_avg"))
          s.Codec.sec_crc_ok)
      secs

let () =
  Alcotest.run ~and_exit:false "codec_v3"
    [ ( "bit identity",
        [ Alcotest.test_case "v3 decode = v2 decode" `Quick test_v3_v2_bit_identity;
          Alcotest.test_case "re-encoding idempotent" `Quick test_v3_reencode_idempotent ] );
      ( "bit flips",
        [ Alcotest.test_case "prologue exhaustive + payload sampled" `Quick
            test_prologue_flips_detected ] );
      ( "lazy verification",
        [ Alcotest.test_case "deferred failure containment" `Quick
            test_lazy_deferred_failure ] );
      ( "fault storms",
        [ Alcotest.test_case "mmap sites total" `Quick test_fault_storm_mmap_sites ] );
      ( "versioning",
        [ Alcotest.test_case "v1/v2/v3 decode identically" `Quick test_old_versions_decode ] );
      ( "sections",
        [ Alcotest.test_case "report localizes damage" `Quick test_sections_report ] ) ]
