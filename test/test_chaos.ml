(* Chaos suite for the serving plane: seeded fault storms over the
   injection sites the hardened daemon and client expose —
   serve.accept, serve.send, serve.deadline, client.connect — plus a
   combined storm over all of them. Gates, per storm:

   - survival: every stormed operation resolves to Ok or a typed
     error (no exception escapes, no hang), and some operations —
     including Ping — succeed through the storm via with_retry;
   - recovery: once the storm lifts, Ping answers a sane health
     snapshot and a batch estimate is bit-identical to the pre-storm
     reference;
   - observability: the counter matching the stormed site moved.

   Storms are seeded through Fault's private RNG stream, so a failing
   run replays exactly. *)

module Serve = Xcluster.Serve
module Protocol = Serve.Protocol
module Error = Serve.Error
module Registry = Serve.Registry
module Metrics = Xc_util.Metrics
module Fault = Xc_util.Fault

let check = Alcotest.check
let counter name = Metrics.counter_value Metrics.global name

(* ---- fixtures ----------------------------------------------------------- *)

let synopsis =
  lazy
    (let doc = Xc_data.Imdb.generate ~seed:91 ~n_movies:30 () in
     Xcluster.Build.run ~min_extent:4
       ~budget:(Xcluster.Build.budget ~bstr_kb:4 ~bval_kb:16 ())
       doc)

let temp_dir () =
  let dir = Filename.temp_file "xc_chaos_test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  dir

let rm_rf dir =
  (try
     Array.iter
       (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
       (Sys.readdir dir)
   with Sys_error _ -> ());
  try Unix.rmdir dir with Unix.Unix_error (_, _, _) -> ()

let save_exn path syn =
  match Xcluster.Store.save path syn with
  | Ok () -> ()
  | Error e -> Alcotest.failf "save %s: %s" path (Xc_core.Codec.error_to_string e)

let batch_queries = [| "//movie/title"; "//movie"; "//title" |]

(* The daemon under chaos: short deadlines so evictions happen inside
   the test's patience, a quick backoff hint so retries stay fast. *)
let with_daemon sources f =
  let dir = temp_dir () in
  let endpoint = Protocol.Unix_sock (Filename.concat dir "d.sock") in
  let registry = Registry.create ~max_engines:4 () in
  List.iter (fun (name, path) -> Registry.add_source registry ~name ~path) sources;
  let ready = Atomic.make false in
  let config =
    { Serve.Daemon.default_config with
      Serve.Daemon.endpoint;
      max_engines = 4;
      options = Serve.default_options;
      workers = 3;
      max_pending = 16;
      recv_timeout_s = 0.5;
      request_budget_s = 1.0;
      retry_after_ms = 10 }
  in
  let daemon =
    Domain.spawn (fun () ->
        Serve.Daemon.run ~config
          ~on_ready:(fun _ -> Atomic.set ready true)
          registry)
  in
  let deadline = Unix.gettimeofday () +. 10.0 in
  while (not (Atomic.get ready)) && Unix.gettimeofday () < deadline do
    ignore (Unix.select [] [] [] 0.01)
  done;
  if not (Atomic.get ready) then Alcotest.fail "daemon did not come up";
  Fun.protect
    ~finally:(fun () ->
      (* faults are lifted by then, but the daemon may still be mid-
         eviction of stormed peers: retry the shutdown handshake *)
      let rec shut n =
        if n = 0 then Alcotest.fail "daemon refused shutdown"
        else
          match Serve.Client.connect endpoint with
          | Error _ -> shut (n - 1)
          | Ok c ->
            let r = Serve.Client.shutdown c in
            Serve.Client.close c;
            (match r with Ok () -> () | Error _ -> shut (n - 1))
      in
      shut 500;
      Domain.join daemon;
      rm_rf dir)
    (fun () -> f endpoint)

(* ---- the storm harness --------------------------------------------------- *)

let bits = Array.map Int64.bits_of_float

(* [run_storm fault ~moved] boots a daemon, records a reference batch
   answer, rides out [fault], and checks the gates. [moved] is the
   counter that proves the storm hit its site. *)
let run_storm ?(ops = 30) ?(attempts = 10) fault ~moved () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let path = Filename.concat dir "imdb.syn" in
  save_exn path (Lazy.force synopsis);
  with_daemon [ ("imdb", path) ] @@ fun endpoint ->
  let reference =
    match Serve.Client.connect endpoint with
    | Error e -> Alcotest.failf "reference connect: %s" (Error.to_string e)
    | Ok c ->
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () -> (
        match Serve.Client.estimate_batch c ~synopsis:"imdb" batch_queries with
        | Ok r -> bits r
        | Error e -> Alcotest.failf "reference batch: %s" (Error.to_string e))
  in
  let moved0 = counter moved in
  let saved = Fault.current () in
  Fault.configure (Some fault);
  let ok = ref 0 and typed = ref 0 and pings = ref 0 in
  Fun.protect
    ~finally:(fun () -> Fault.configure saved)
    (fun () ->
      for i = 1 to ops do
        let r =
          Serve.Client.with_retry ~attempts ~base_delay_s:0.005
            ~max_delay_s:0.05 ~seed:i ~timeout_s:5.0 endpoint (fun c ->
              if i mod 3 = 0 then
                match Serve.Client.ping c with
                | Ok h ->
                  check Alcotest.int "ping sees the synopsis" 1
                    h.Protocol.h_synopses;
                  incr pings;
                  Ok ()
                | Error e -> Error e
              else
                match
                  Serve.Client.estimate c ~synopsis:"imdb"
                    ~query:"//movie/title"
                with
                | Ok _ -> Ok ()
                | Error e -> Error e)
        in
        match r with
        | Ok () -> incr ok
        | Error _ -> incr typed
      done);
  (* survival: everything resolved, and the retry policy pushed most
     operations — pings included — through the storm *)
  check Alcotest.int "every stormed operation resolved" ops (!ok + !typed);
  check Alcotest.bool "operations survived the storm" true (!ok > 0);
  check Alcotest.bool "ping answered during the storm" true (!pings > 0);
  check Alcotest.bool (moved ^ " moved") true (counter moved > moved0);
  (* recovery: storm lifted, the daemon is intact and exact *)
  (match
     Serve.Client.with_retry ~attempts:10 ~timeout_s:5.0 endpoint
       Serve.Client.ping
   with
  | Ok h ->
    check Alcotest.int "post-storm synopses" 1 h.Protocol.h_synopses;
    check Alcotest.bool "post-storm not draining" true
      (not h.Protocol.h_draining)
  | Error e -> Alcotest.failf "post-storm ping: %s" (Error.to_string e));
  match
    Serve.Client.with_retry ~attempts:10 ~timeout_s:5.0 endpoint (fun c ->
        Serve.Client.estimate_batch c ~synopsis:"imdb" batch_queries)
  with
  | Error e -> Alcotest.failf "post-storm batch: %s" (Error.to_string e)
  | Ok r ->
    let got = bits r in
    check Alcotest.int "post-storm batch width" (Array.length reference)
      (Array.length got);
    Array.iteri
      (fun i b ->
        check Alcotest.bool "post-storm batch bit-identical" true
          (b = reference.(i)))
      got

let storm ?seed:(s = 0) prob sites kinds =
  { Fault.seed = 900 + s; prob; kinds; sites }

let test_accept_storm () =
  run_storm
    (storm ~seed:1 0.5 [ "serve.accept" ] [ Fault.Eio ])
    ~moved:"daemon.accept_error" ()

let test_send_storm () =
  run_storm
    (storm ~seed:2 0.3 [ "serve.send" ] [ Fault.Eio; Fault.Enospc ])
    ~moved:"fault.injected" ()

let test_deadline_storm () =
  run_storm
    (storm ~seed:3 0.2 [ "serve.deadline" ] [ Fault.Eio ])
    ~moved:"daemon.timeouts" ()

let test_connect_storm () =
  run_storm
    (storm ~seed:4 0.4 [ "client.connect" ] [ Fault.Eio ])
    ~moved:"client.connect_error" ()

let test_combined_storm () =
  run_storm ~attempts:12
    (storm ~seed:5 0.15
       [ "serve.accept"; "serve.send"; "serve.deadline"; "client.connect" ]
       [ Fault.Eio ])
    ~moved:"fault.injected" ()

let () =
  Alcotest.run "chaos"
    [ ( "storms",
        [ Alcotest.test_case "accept storm" `Quick test_accept_storm;
          Alcotest.test_case "send storm" `Quick test_send_storm;
          Alcotest.test_case "deadline storm" `Quick test_deadline_storm;
          Alcotest.test_case "connect storm" `Quick test_connect_storm;
          Alcotest.test_case "combined storm" `Quick test_combined_storm ] ) ]
