(* Serving-layer tests: the wire protocol's total decoding (hostile
   lengths, forged CRCs, truncation), the registry's verify-on-admit
   skip-and-count contract, the bounded engine LRU, and a live daemon
   driven by concurrent client domains — whose answers must be
   bit-identical to estimate_uncached on the same artifact, under a
   socket fault storm included. *)

module Serve = Xcluster.Serve
module Protocol = Serve.Protocol
module Error = Serve.Error
module Registry = Serve.Registry
module Lru = Xc_serve.Lru
module Metrics = Xc_util.Metrics
module Fault = Xc_util.Fault

let check = Alcotest.check

let counter name = Metrics.counter_value Metrics.global name

(* ---- fixtures ----------------------------------------------------------- *)

let synopsis_a =
  lazy
    (let doc = Xc_data.Imdb.generate ~seed:81 ~n_movies:40 () in
     Xcluster.Build.run ~min_extent:4
       ~budget:(Xcluster.Build.budget ~bstr_kb:4 ~bval_kb:20 ())
       doc)

let synopsis_b =
  lazy
    (let doc = Xc_data.Dblp.generate ~seed:82 ~n_authors:40 () in
     Xcluster.Build.run ~min_extent:4
       ~budget:(Xcluster.Build.budget ~bstr_kb:4 ~bval_kb:20 ())
       doc)

(* a second generation for the same dataset as [synopsis_a]: a tighter
   structural budget, so its estimates (and its uid) differ *)
let synopsis_a2 =
  lazy
    (let doc = Xc_data.Imdb.generate ~seed:81 ~n_movies:40 () in
     Xcluster.Build.run ~min_extent:4
       ~budget:(Xcluster.Build.budget ~bstr_kb:2 ~bval_kb:12 ())
       doc)

let temp_dir () =
  let dir = Filename.temp_file "xc_serve_test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  dir

let rm_rf dir =
  (try
     Array.iter
       (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
       (Sys.readdir dir)
   with Sys_error _ -> ());
  try Unix.rmdir dir with Unix.Unix_error (_, _, _) -> ()

let save_exn path syn =
  match Xcluster.Store.save path syn with
  | Ok () -> ()
  | Error e -> Alcotest.failf "save %s: %s" path (Xc_core.Codec.error_to_string e)

(* ---- protocol round-trip ------------------------------------------------ *)

let sample_requests =
  [ Protocol.Estimate { synopsis = "imdb"; query = "//movie/title" };
    Protocol.Estimate_batch
      {
        synopsis = "x";
        queries = [| "//a"; "//b[. > 3]/c"; "//d[. ftcontains(war)]" |];
        options =
          { Serve.default_options with
            Serve.domains = Some 3;
            fallback = Serve.Strict;
            cohort = false };
      };
    Protocol.Estimate_batch
      { synopsis = ""; queries = [||]; options = Serve.default_options };
    Protocol.List_synopses;
    Protocol.Stats;
    Protocol.Update { synopsis = "imdb"; path = "/var/lib/xc/imdb.g2.syn" };
    Protocol.Update { synopsis = ""; path = "" };
    Protocol.Reload;
    Protocol.Ping;
    Protocol.Shutdown ]

let sample_responses =
  [ Protocol.Floats [| 1.5; 0.0; -0.0; Float.max_float; 1e-300; Float.infinity |];
    Protocol.Floats [||];
    Protocol.Synopses
      [| { Protocol.l_name = "imdb"; l_nodes = 12; l_edges = 30; l_bytes = 4096 };
         { Protocol.l_name = ""; l_nodes = 0; l_edges = 0; l_bytes = 0 } |];
    Protocol.Stats_json "{\"counters\":{}}";
    Protocol.Reloaded { loaded = 3; skipped = 1 };
    Protocol.Swapped { generation = 42 };
    Protocol.Health
      {
        Protocol.h_synopses = 3;
        h_generations = 7;
        h_queue = 2;
        h_inflight = 1;
        h_uptime_s = 12.5;
        h_draining = true;
      };
    Protocol.Health
      {
        Protocol.h_synopses = 0;
        h_generations = 0;
        h_queue = 0;
        h_inflight = 0;
        h_uptime_s = 0.0;
        h_draining = false;
      };
    Protocol.Done;
    Protocol.Error_frame { code = 4; message = "query 0: nope" } ]

let test_request_roundtrip () =
  List.iter
    (fun req ->
      match Protocol.decode_request (Protocol.encode_request req) with
      | Ok req' -> check Alcotest.bool "request round-trips" true (req = req')
      | Error e -> Alcotest.failf "decode failed: %a" Error.pp_protocol e)
    sample_requests

let test_response_roundtrip () =
  List.iter
    (fun resp ->
      match Protocol.decode_response (Protocol.encode_response resp) with
      | Ok resp' ->
        (* floats must survive bit-for-bit, so compare Floats bitwise *)
        (match (resp, resp') with
        | Protocol.Floats a, Protocol.Floats b ->
          check Alcotest.int "float count" (Array.length a) (Array.length b);
          Array.iteri
            (fun i v ->
              check Alcotest.bool "float bits" true
                (Int64.bits_of_float v = Int64.bits_of_float b.(i)))
            a
        | _ -> check Alcotest.bool "response round-trips" true (resp = resp'))
      | Error e -> Alcotest.failf "decode failed: %a" Error.pp_protocol e)
    sample_responses

(* every truncation of a valid frame must decode to a typed protocol
   error — never an exception, never a success *)
let test_truncation_total () =
  let frame =
    Protocol.encode_request
      (Protocol.Estimate_batch
         {
           synopsis = "syn";
           queries = [| "//a/b"; "//c" |];
           options = Serve.default_options;
         })
  in
  for len = 0 to String.length frame - 1 do
    match Protocol.decode_request (String.sub frame 0 len) with
    | Ok _ -> Alcotest.failf "truncation to %d bytes decoded successfully" len
    | Error _ -> ()
  done

(* a flipped payload bit must be caught by the frame CRC before any
   payload field is parsed *)
let test_forged_crc () =
  let frame = Protocol.encode_request (Protocol.Estimate { synopsis = "s"; query = "//q" }) in
  let header_bytes = String.length (Protocol.encode_request Protocol.Shutdown) in
  let b = Bytes.of_string frame in
  (* flip one bit in the payload (past the header) *)
  let i = header_bytes + ((Bytes.length b - header_bytes) / 2) in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x10));
  match Protocol.decode_request (Bytes.unsafe_to_string b) with
  | Error (Checksum_mismatch _) -> ()
  | Error e -> Alcotest.failf "expected checksum mismatch, got %a" Error.pp_protocol e
  | Ok _ -> Alcotest.fail "bit-flipped frame decoded successfully"

(* a frame header advertising a huge payload must be rejected from the
   length field alone *)
let test_hostile_length () =
  let huge = Bytes.make 13 '\000' in
  Bytes.set huge 0 '\x01';
  (* length = max_int as 8-byte BE *)
  Bytes.set_int64_be huge 1 (Int64.of_int max_int);
  match Protocol.decode_request (Bytes.unsafe_to_string huge ^ String.make 64 'x') with
  | Error (Bad_length _) -> ()
  | Error e -> Alcotest.failf "expected bad length, got %a" Error.pp_protocol e
  | Ok _ -> Alcotest.fail "hostile length accepted"

let test_bad_tag () =
  let payload_crc = Xc_util.Crc32.digest "" in
  let b = Bytes.make 13 '\000' in
  Bytes.set b 0 '\x33';
  Bytes.set_int32_be b 9 (Int32.of_int payload_crc);
  match Protocol.decode_request (Bytes.unsafe_to_string b) with
  | Error (Bad_tag 0x33) -> ()
  | Error e -> Alcotest.failf "expected bad tag, got %a" Error.pp_protocol e
  | Ok _ -> Alcotest.fail "unknown tag accepted"

let test_endpoint_parsing () =
  (match Protocol.endpoint_of_string "unix:/tmp/x.sock" with
  | Ok (Protocol.Unix_sock "/tmp/x.sock") -> ()
  | _ -> Alcotest.fail "unix: endpoint");
  (match Protocol.endpoint_of_string "tcp:localhost:7070" with
  | Ok (Protocol.Tcp ("localhost", 7070)) -> ()
  | _ -> Alcotest.fail "tcp: endpoint");
  (match Protocol.endpoint_of_string "bare.sock" with
  | Ok (Protocol.Unix_sock "bare.sock") -> ()
  | _ -> Alcotest.fail "bare endpoint");
  match Protocol.endpoint_of_string "tcp:nope" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "tcp without port accepted"

(* errors cross the wire category-intact *)
let test_error_wire () =
  List.iter
    (fun e ->
      let code, msg = Error.to_wire e in
      let back = Error.of_wire code msg in
      let same =
        match (e, back) with
        | Error.Codec _, Error.Codec _
        | Error.Admission _, Error.Admission _
        | Error.Query _, Error.Query _
        | Error.Unavailable _, Error.Unavailable _
        | Error.Io _, Error.Io _ ->
          true
        (* a remote protocol complaint intentionally comes back as Io *)
        | Error.Protocol _, Error.Io _ -> true
        (* the numeric payloads ride in the message's leading decimal *)
        | Error.Timeout { elapsed_ms = a }, Error.Timeout { elapsed_ms = b } ->
          a = b
        | ( Error.Overloaded { retry_after_ms = a },
            Error.Overloaded { retry_after_ms = b } ) ->
          a = b
        | _ -> false
      in
      check Alcotest.bool "category survives the wire" true same)
    [ Error.Codec (Xc_core.Codec.Io "gone");
      Error.Protocol Error.Closed;
      Error.Admission "unknown";
      Error.Query "bad twig";
      Error.Unavailable "strict";
      Error.Io "refused";
      Error.Timeout { elapsed_ms = 1234 };
      Error.Overloaded { retry_after_ms = 250 } ]

(* ---- options ------------------------------------------------------------ *)

let test_options_validation () =
  let o = Serve.options ~domains:2 ~fallback:Serve.Strict () in
  check Alcotest.bool "fields" true
    (o.Serve.domains = Some 2 && o.Serve.fallback = Serve.Strict);
  check Alcotest.bool "default degrades" true
    (Serve.default_options.Serve.fallback = Serve.Degrade
    && Serve.default_options.Serve.domains = None);
  check Alcotest.bool "default admission limits are positive" true
    (Serve.default_options.Serve.max_batch > 0
    && Serve.default_options.Serve.max_frame_bytes > 0);
  (match Serve.options ~max_batch:16 ~max_frame_bytes:4096 () with
  | { Serve.max_batch = 16; max_frame_bytes = 4096; _ } -> ()
  | _ -> Alcotest.fail "admission limits not threaded");
  (match Serve.options ~max_batch:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "max_batch = 0 accepted");
  (match Serve.options ~max_frame_bytes:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "max_frame_bytes = 0 accepted");
  match Serve.options ~domains:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "domains = 0 accepted"

(* ---- LRU ---------------------------------------------------------------- *)

let test_lru_policy () =
  let l = Lru.create 2 in
  check Alcotest.bool "no eviction below capacity" true (Lru.put l "a" 1 = None);
  check Alcotest.bool "no eviction at capacity" true (Lru.put l "b" 2 = None);
  check Alcotest.(list string) "recency order" [ "b"; "a" ] (Lru.keys_by_recency l);
  (* touching [a] makes [b] the eviction candidate *)
  check Alcotest.(option int) "hit refreshes" (Some 1) (Lru.find l "a");
  check Alcotest.bool "lru evicted" true (Lru.put l "c" 3 = Some ("b", 2));
  check Alcotest.(list string) "post-eviction order" [ "c"; "a" ] (Lru.keys_by_recency l);
  (* replacing an existing key never evicts *)
  check Alcotest.bool "replace in place" true (Lru.put l "a" 9 = None);
  check Alcotest.(option int) "replaced value" (Some 9) (Lru.find l "a");
  check Alcotest.int "length" 2 (Lru.length l)

(* ---- registry ----------------------------------------------------------- *)

let test_registry_skip_and_count () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  save_exn (Filename.concat dir "good_a.syn") (Lazy.force synopsis_a);
  save_exn (Filename.concat dir "good_b.syn") (Lazy.force synopsis_b);
  let oc = open_out (Filename.concat dir "rotten.syn") in
  output_string oc "this is not a synopsis";
  close_out oc;
  let errors_before = counter "serve.load_error" in
  let r = Registry.create () in
  (match Registry.add_dir r dir with
  | Ok () -> ()
  | Error e -> Alcotest.failf "add_dir: %s" (Error.to_string e));
  let report = Registry.load r in
  check Alcotest.int "loaded" 2 report.Registry.loaded;
  check Alcotest.int "skipped" 1 report.Registry.skipped;
  check Alcotest.(list string) "only verified names admitted" [ "good_a"; "good_b" ]
    (Registry.names r);
  check Alcotest.bool "skip was counted" true (counter "serve.load_error" > errors_before);
  check Alcotest.bool "rotten not found" true (Registry.find r "rotten" = None);
  (* a reload after the good artifact rots keeps the admitted synopsis *)
  let oc = open_out (Filename.concat dir "good_a.syn") in
  output_string oc "rotted in place";
  close_out oc;
  let report = Registry.load r in
  check Alcotest.int "reload skipped the rotted pair" 2 report.Registry.skipped;
  check Alcotest.bool "previous admission survives" true
    (Registry.find r "good_a" <> None)

let test_registry_engine_lru () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  save_exn (Filename.concat dir "a.syn") (Lazy.force synopsis_a);
  save_exn (Filename.concat dir "b.syn") (Lazy.force synopsis_b);
  let r = Registry.create ~max_engines:1 () in
  (match Registry.add_dir r dir with
  | Ok () -> ()
  | Error e -> Alcotest.failf "add_dir: %s" (Error.to_string e));
  ignore (Registry.load r);
  check Alcotest.int "bound" 1 (Registry.max_engines r);
  let admits = counter "serve.engine_admit" in
  let evicts = counter "serve.engine_evict" in
  let hits = counter "serve.engine_hit" in
  (match Registry.engine r "a" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "engine a: %s" (Error.to_string e));
  check Alcotest.(list string) "a resident" [ "a" ] (Registry.engine_names r);
  (match Registry.engine r "b" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "engine b: %s" (Error.to_string e));
  check Alcotest.(list string) "b evicted a" [ "b" ] (Registry.engine_names r);
  check Alcotest.int "two admits" (admits + 2) (counter "serve.engine_admit");
  check Alcotest.int "one evict" (evicts + 1) (counter "serve.engine_evict");
  ignore (Registry.engine r "b");
  check Alcotest.int "resident engine is a hit" (hits + 1) (counter "serve.engine_hit");
  match Registry.engine r "nope" with
  | Error (Error.Admission _) -> ()
  | Error e -> Alcotest.failf "expected admission error, got %s" (Error.to_string e)
  | Ok _ -> Alcotest.fail "unknown name produced an engine"

(* ---- live daemon -------------------------------------------------------- *)

(* The daemon runs in a spawned domain of this process (Daemon.run
   blocks its caller; Shutdown exits it), clients in further domains
   doing only socket I/O. *)
let with_daemon ?(max_engines = 8) ?(tune = fun c -> c) sources f =
  let dir = temp_dir () in
  let endpoint = Protocol.Unix_sock (Filename.concat dir "d.sock") in
  let registry = Registry.create ~max_engines () in
  List.iter (fun (name, path) -> Registry.add_source registry ~name ~path) sources;
  let ready = Atomic.make false in
  let config =
    tune
      { Serve.Daemon.default_config with
        Serve.Daemon.endpoint;
        max_engines;
        options = Serve.default_options }
  in
  let daemon =
    Domain.spawn (fun () ->
        Serve.Daemon.run ~config
          ~on_ready:(fun _ -> Atomic.set ready true)
          registry)
  in
  let deadline = Unix.gettimeofday () +. 10.0 in
  while (not (Atomic.get ready)) && Unix.gettimeofday () < deadline do
    ignore (Unix.select [] [] [] 0.01)
  done;
  if not (Atomic.get ready) then Alcotest.fail "daemon did not come up";
  Fun.protect
    ~finally:(fun () ->
      (* the shutdown frame can be refused under an active fault storm:
         retry until acknowledged (faults are probabilistic) *)
      let rec shut n =
        if n = 0 then Alcotest.fail "daemon refused shutdown"
        else
          match Serve.Client.connect endpoint with
          | Error _ -> shut (n - 1)
          | Ok c ->
            let r = Serve.Client.shutdown c in
            Serve.Client.close c;
            (match r with Ok () -> () | Error _ -> shut (n - 1))
      in
      shut 500;
      Domain.join daemon;
      rm_rf dir)
    (fun () -> f endpoint)

let query_sources syn =
  let doc = Xc_data.Imdb.generate ~seed:81 ~n_movies:40 () in
  let spec = { Xc_twig.Workload.default_spec with n_queries = 40; seed = 9 } in
  let wl = Xc_twig.Workload.generate ~spec doc in
  (* daemon-side queries are source text: keep only workload queries
     whose rendering parses back (drop the leading "." of the pp form) *)
  wl
  |> List.filter_map (fun e ->
         let s = Format.asprintf "%a" Xc_twig.Twig_query.pp e.Xc_twig.Workload.query in
         let s =
           if String.length s > 0 && s.[0] = '.' then
             String.sub s 1 (String.length s - 1)
           else s
         in
         match Xcluster.Query.parse s with
         | q -> Some (s, Xcluster.Query.estimate_uncached syn q)
         | exception _ -> None)
  |> Array.of_list

let test_daemon_concurrent_bitwise () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let path = Filename.concat dir "imdb.syn" in
  save_exn path (Lazy.force synopsis_a);
  (* the reference is computed on the loaded artifact — the bytes the
     daemon serves *)
  let loaded =
    match Xcluster.Store.load path with
    | Ok s -> s
    | Error e -> Alcotest.failf "load: %s" (Xc_core.Codec.error_to_string e)
  in
  let qs = query_sources loaded in
  check Alcotest.bool "workload renders to source" true (Array.length qs > 10);
  let sources = Array.map fst qs in
  let expected = Array.map snd qs in
  with_daemon [ ("imdb", path) ] @@ fun endpoint ->
  let client () =
    Domain.spawn (fun () ->
        match Serve.Client.connect endpoint with
        | Error e -> Result.Error (Error.to_string e)
        | Ok c ->
          let r =
            match Serve.Client.estimate_batch c ~synopsis:"imdb" sources with
            | Ok floats -> Result.Ok floats
            | Error e -> Result.Error (Error.to_string e)
          in
          Serve.Client.close c;
          r)
  in
  let answers = List.map Domain.join (List.init 3 (fun _ -> client ())) in
  List.iter
    (fun answer ->
      match answer with
      | Result.Error e -> Alcotest.failf "client: %s" e
      | Result.Ok floats ->
        check Alcotest.int "answer count" (Array.length expected) (Array.length floats);
        Array.iteri
          (fun i v ->
            check Alcotest.bool "bit-identical to estimate_uncached" true
              (Int64.bits_of_float v = Int64.bits_of_float expected.(i)))
          floats)
    answers

let test_daemon_error_frames () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let path = Filename.concat dir "imdb.syn" in
  save_exn path (Lazy.force synopsis_a);
  with_daemon [ ("imdb", path) ] @@ fun endpoint ->
  let c =
    match Serve.Client.connect endpoint with
    | Ok c -> c
    | Error e -> Alcotest.failf "connect: %s" (Error.to_string e)
  in
  Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
  (match Serve.Client.estimate c ~synopsis:"nope" ~query:"//a" with
  | Error (Error.Admission _) -> ()
  | Error e -> Alcotest.failf "expected admission error, got %s" (Error.to_string e)
  | Ok _ -> Alcotest.fail "unknown synopsis answered");
  (match Serve.Client.estimate c ~synopsis:"imdb" ~query:"[[[" with
  | Error (Error.Query _) -> ()
  | Error e -> Alcotest.failf "expected query error, got %s" (Error.to_string e)
  | Ok _ -> Alcotest.fail "unparsable query answered");
  (* the connection survives error frames: a good request still works *)
  (match Serve.Client.estimate c ~synopsis:"imdb" ~query:"//movie/title" with
  | Ok v -> check Alcotest.bool "finite estimate" true (Float.is_finite v)
  | Error e -> Alcotest.failf "estimate after errors: %s" (Error.to_string e));
  (match Serve.Client.list_synopses c with
  | Ok [| { Protocol.l_name = "imdb"; l_nodes; l_bytes; _ } |] ->
    check Alcotest.bool "listed sizes" true (l_nodes > 0 && l_bytes > 0)
  | Ok _ -> Alcotest.fail "unexpected listing"
  | Error e -> Alcotest.failf "list: %s" (Error.to_string e));
  (match Serve.Client.stats c with
  | Ok json ->
    check Alcotest.bool "stats is a JSON object" true
      (String.length json > 0 && json.[0] = '{')
  | Error e -> Alcotest.failf "stats: %s" (Error.to_string e));
  match Serve.Client.reload c with
  | Ok report -> check Alcotest.int "reload re-admits" 1 report.Registry.loaded
  | Error e -> Alcotest.failf "reload: %s" (Error.to_string e)

(* a storm of Truncate+Bit_flip faults on the daemon's socket-read site:
   every request must come back Ok or as a typed error, and the daemon
   must still answer cleanly once the storm lifts *)
let test_daemon_survives_socket_storm () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let path = Filename.concat dir "imdb.syn" in
  save_exn path (Lazy.force synopsis_a);
  with_daemon [ ("imdb", path) ] @@ fun endpoint ->
  let saved = Fault.current () in
  Fault.configure
    (Some
       {
         Fault.seed = 17;
         prob = 0.4;
         kinds = [ Fault.Truncate; Fault.Bit_flip ];
         sites = [ "serve.recv" ];
       });
  let ok = ref 0 and typed_errors = ref 0 in
  Fun.protect ~finally:(fun () -> Fault.configure saved) (fun () ->
      for _ = 1 to 60 do
        match Serve.Client.connect endpoint with
        | Error _ -> incr typed_errors
        | Ok c ->
          (match Serve.Client.estimate c ~synopsis:"imdb" ~query:"//movie/title" with
          | Ok _ -> incr ok
          | Error _ -> incr typed_errors);
          Serve.Client.close c
      done);
  check Alcotest.int "every stormed request answered" 60 (!ok + !typed_errors);
  check Alcotest.bool "storm actually fired" true (!typed_errors > 0);
  (* storm lifted: the daemon is intact *)
  match Serve.Client.connect endpoint with
  | Error e -> Alcotest.failf "connect after storm: %s" (Error.to_string e)
  | Ok c ->
    Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
    (match Serve.Client.estimate c ~synopsis:"imdb" ~query:"//movie/title" with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "estimate after storm: %s" (Error.to_string e))

(* ---- serving-plane hardening --------------------------------------------- *)

let sock_path = function
  | Protocol.Unix_sock p -> p
  | Protocol.Tcp _ -> Alcotest.fail "expected a unix endpoint"

(* a raw peer, below the client layer: the hardening tests need to
   misbehave in ways the client cannot *)
let raw_connect endpoint =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX (sock_path endpoint));
  fd

let raw_close fd = try Unix.close fd with Unix.Unix_error (_, _, _) -> ()

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  m = 0 || at 0

let test_ping_health () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let path = Filename.concat dir "imdb.syn" in
  save_exn path (Lazy.force synopsis_a);
  with_daemon [ ("imdb", path) ] @@ fun endpoint ->
  match Serve.Client.connect endpoint with
  | Error e -> Alcotest.failf "connect: %s" (Error.to_string e)
  | Ok c ->
    Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
    (match Serve.Client.ping c with
    | Ok h ->
      check Alcotest.int "synopses" 1 h.Protocol.h_synopses;
      check Alcotest.bool "load admitted a generation" true
        (h.Protocol.h_generations >= 1);
      (* this very connection is checked out by a worker *)
      check Alcotest.bool "pinging connection is in flight" true
        (h.Protocol.h_inflight >= 1);
      check Alcotest.bool "queue depth sane" true (h.Protocol.h_queue >= 0);
      check Alcotest.bool "uptime sane" true (h.Protocol.h_uptime_s >= 0.0);
      check Alcotest.bool "not draining" true (not h.Protocol.h_draining)
    | Error e -> Alcotest.failf "ping: %s" (Error.to_string e));
    (* health answers interleave with estimates on one connection *)
    match Serve.Client.estimate c ~synopsis:"imdb" ~query:"//movie/title" with
    | Ok v -> check Alcotest.bool "estimate after ping" true (Float.is_finite v)
    | Error e -> Alcotest.failf "estimate after ping: %s" (Error.to_string e)

(* A slow-loris peer — half a frame header, then silence — must cost one
   worker for at most the read deadline: other clients stay served, and
   the loris gets a typed Timeout frame and eviction. *)
let test_slow_loris_evicted () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let path = Filename.concat dir "imdb.syn" in
  save_exn path (Lazy.force synopsis_a);
  let tune c =
    { c with
      Serve.Daemon.workers = 2;
      recv_timeout_s = 0.15;
      request_budget_s = 0.5 }
  in
  with_daemon ~tune [ ("imdb", path) ] @@ fun endpoint ->
  let timeouts0 = counter "daemon.timeouts" in
  let evicted0 = counter "daemon.evicted" in
  let loris = raw_connect endpoint in
  Fun.protect ~finally:(fun () -> raw_close loris) @@ fun () ->
  ignore (Unix.write_substring loris "\x01" 0 1);
  (* the stalled peer occupies one worker; the other still answers *)
  (match Serve.Client.connect endpoint with
  | Error e -> Alcotest.failf "connect during stall: %s" (Error.to_string e)
  | Ok c ->
    Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
    (match Serve.Client.estimate c ~synopsis:"imdb" ~query:"//movie/title" with
    | Ok v ->
      check Alcotest.bool "finite estimate during stall" true (Float.is_finite v)
    | Error e ->
      Alcotest.failf "stalled peer blocked other clients: %s" (Error.to_string e)));
  (* the loris is evicted with a typed frame within the deadline *)
  Unix.setsockopt_float loris Unix.SO_RCVTIMEO 5.0;
  let buf = Buffer.create 64 in
  let chunk = Bytes.create 256 in
  let rec drain () =
    match Unix.read loris chunk 0 256 with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      drain ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      Alcotest.fail "stalled peer was not evicted within the deadline"
  in
  drain ();
  (match Protocol.decode_response (Buffer.contents buf) with
  | Ok (Protocol.Error_frame { code; message }) -> (
    match Error.of_wire code message with
    | Error.Timeout { elapsed_ms } ->
      check Alcotest.bool "elapsed is non-negative" true (elapsed_ms >= 0)
    | e -> Alcotest.failf "expected a timeout frame, got %s" (Error.to_string e))
  | Ok _ -> Alcotest.fail "expected an error frame before eviction"
  | Error e -> Alcotest.failf "eviction frame damaged: %a" Error.pp_protocol e);
  check Alcotest.bool "timeout counted" true (counter "daemon.timeouts" > timeouts0);
  check Alcotest.bool "eviction counted" true (counter "daemon.evicted" > evicted0)

(* With one worker stalled and the pending queue full, the next
   connection is shed with a typed Overloaded frame carrying the
   daemon's backoff hint — and with_retry outlasts the stall. *)
let test_overload_shed_and_retry () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let path = Filename.concat dir "imdb.syn" in
  save_exn path (Lazy.force synopsis_a);
  let tune c =
    { c with
      Serve.Daemon.workers = 1;
      max_pending = 1;
      recv_timeout_s = 0.3;
      request_budget_s = 0.5;
      retry_after_ms = 20 }
  in
  with_daemon ~tune [ ("imdb", path) ] @@ fun endpoint ->
  let shed0 = counter "daemon.shed" in
  (* a stalled peer checks out the single worker... *)
  let loris = raw_connect endpoint in
  Fun.protect ~finally:(fun () -> raw_close loris) @@ fun () ->
  ignore (Unix.write_substring loris "\x01" 0 1);
  Unix.sleepf 0.05;
  (* ...a second connection fills the pending queue... *)
  let filler = raw_connect endpoint in
  Fun.protect ~finally:(fun () -> raw_close filler) @@ fun () ->
  Unix.sleepf 0.05;
  (* ...so the third is shed before it utters a request *)
  (match Serve.Client.connect endpoint with
  | Error e -> Alcotest.failf "connect: %s" (Error.to_string e)
  | Ok c -> (
    Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
    match Serve.Client.estimate c ~synopsis:"imdb" ~query:"//movie/title" with
    | Error (Error.Overloaded { retry_after_ms }) ->
      check Alcotest.int "daemon's backoff hint" 20 retry_after_ms
    | Error e -> Alcotest.failf "expected overloaded, got %s" (Error.to_string e)
    | Ok _ -> Alcotest.fail "request served through a full queue"));
  check Alcotest.bool "shed counted" true (counter "daemon.shed" > shed0);
  (* the stalled peers are evicted within their deadlines, so a retried
     request is eventually served *)
  let retry0 = counter "client.retry" in
  (match
     Serve.Client.with_retry ~attempts:20 ~base_delay_s:0.05 ~max_delay_s:0.2
       ~timeout_s:5.0 endpoint (fun c ->
         Serve.Client.estimate c ~synopsis:"imdb" ~query:"//movie/title")
   with
  | Ok v -> check Alcotest.bool "retried estimate finite" true (Float.is_finite v)
  | Error e -> Alcotest.failf "with_retry never recovered: %s" (Error.to_string e));
  check Alcotest.bool "retries taken" true (counter "client.retry" > retry0)

(* Admission limits: an over-limit batch is a permanent Admission error
   on a surviving connection; an oversized frame is refused from its
   header alone and the stream dropped, after which the client's next
   idempotent request transparently reconnects. *)
let test_admission_limits () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let path = Filename.concat dir "imdb.syn" in
  save_exn path (Lazy.force synopsis_a);
  let tune c =
    { c with
      Serve.Daemon.options = Serve.options ~max_batch:4 ~max_frame_bytes:2048 ()
    }
  in
  with_daemon ~tune [ ("imdb", path) ] @@ fun endpoint ->
  match Serve.Client.connect endpoint with
  | Error e -> Alcotest.failf "connect: %s" (Error.to_string e)
  | Ok c ->
    Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
    (match
       Serve.Client.estimate_batch c ~synopsis:"imdb"
         (Array.make 5 "//movie/title")
     with
    | Error (Error.Admission msg) ->
      check Alcotest.bool "names the limit" true (contains msg "limit")
    | Error e -> Alcotest.failf "expected admission, got %s" (Error.to_string e)
    | Ok _ -> Alcotest.fail "over-limit batch served");
    (* the refusal was an answer, not an eviction: same connection *)
    (match
       Serve.Client.estimate_batch c ~synopsis:"imdb"
         (Array.make 4 "//movie/title")
     with
    | Ok r -> check Alcotest.int "at-limit batch answered" 4 (Array.length r)
    | Error e -> Alcotest.failf "at-limit batch: %s" (Error.to_string e));
    let reconnect0 = counter "client.reconnect" in
    (match
       Serve.Client.estimate c ~synopsis:"imdb" ~query:(String.make 4096 'x')
     with
    | Error (Error.Admission _) -> ()
    | Error e -> Alcotest.failf "expected admission, got %s" (Error.to_string e)
    | Ok _ -> Alcotest.fail "oversized frame served");
    (match Serve.Client.estimate c ~synopsis:"imdb" ~query:"//movie/title" with
    | Ok v -> check Alcotest.bool "served after reconnect" true (Float.is_finite v)
    | Error e -> Alcotest.failf "reconnect after eviction: %s" (Error.to_string e));
    check Alcotest.bool "reconnect counted" true
      (counter "client.reconnect" > reconnect0)

(* Graceful drain: a request already on the wire when stop() lands is
   answered — bit-identical — before its connection closes, and the
   daemon then refuses new connections and exits. Runs its own daemon
   lifecycle: with_daemon's shutdown handshake expects a live daemon. *)
let test_graceful_drain () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let path = Filename.concat dir "imdb.syn" in
  save_exn path (Lazy.force synopsis_a);
  let expected =
    match Xcluster.Store.load path with
    | Ok s -> Xcluster.Query.estimate_uncached s (Xcluster.Query.parse "//movie/title")
    | Error e -> Alcotest.failf "load: %s" (Xc_core.Codec.error_to_string e)
  in
  let endpoint = Protocol.Unix_sock (Filename.concat dir "d.sock") in
  let registry = Registry.create ~max_engines:4 () in
  Registry.add_source registry ~name:"imdb" ~path;
  let ready = Atomic.make false in
  let config =
    { Serve.Daemon.default_config with
      Serve.Daemon.endpoint;
      max_engines = 4;
      options = Serve.default_options;
      workers = 2;
      drain_timeout_s = 5.0 }
  in
  let daemon =
    Domain.spawn (fun () ->
        Serve.Daemon.run ~config
          ~on_ready:(fun _ -> Atomic.set ready true)
          registry)
  in
  let deadline = Unix.gettimeofday () +. 10.0 in
  while (not (Atomic.get ready)) && Unix.gettimeofday () < deadline do
    ignore (Unix.select [] [] [] 0.01)
  done;
  if not (Atomic.get ready) then Alcotest.fail "daemon did not come up";
  let fd = raw_connect endpoint in
  Fun.protect ~finally:(fun () -> raw_close fd) @@ fun () ->
  let send_req req =
    match Protocol.send fd (Protocol.encode_request req) with
    | Ok () -> ()
    | Error e -> Alcotest.failf "send: %s" (Error.to_string e)
  in
  let recv_estimate what =
    match Protocol.recv_response fd with
    | Ok (Protocol.Floats [| v |]) ->
      check Alcotest.bool (what ^ " bit-identical") true
        (Int64.bits_of_float v = Int64.bits_of_float expected)
    | Ok _ -> Alcotest.failf "%s: unexpected response kind" what
    | Error e -> Alcotest.failf "%s: %s" what (Error.to_string e)
  in
  let req = Protocol.Estimate { synopsis = "imdb"; query = "//movie/title" } in
  (* prime: a worker now owns this connection *)
  send_req req;
  recv_estimate "primed estimate";
  (* in flight at stop time: request on the wire, then drain begins *)
  send_req req;
  Serve.Daemon.stop ();
  recv_estimate "drained in-flight estimate";
  (* after answering, the drain closes the connection... *)
  (match Protocol.recv_response fd with
  | Ok _ -> Alcotest.fail "connection survived the drain"
  | Error _ -> ());
  Domain.join daemon;
  (* ...and the stopped daemon accepts nobody *)
  match Serve.Client.connect endpoint with
  | Ok c ->
    Serve.Client.close c;
    Alcotest.fail "daemon accepted a connection after drain"
  | Error (Error.Io _) -> ()
  | Error e -> Alcotest.failf "expected io error, got %s" (Error.to_string e)

(* connection failures are typed — never a silent loopback fallback *)
let test_client_connect_errors () =
  (match Serve.Client.connect (Protocol.Unix_sock "/definitely/not/here.sock") with
  | Error (Error.Io _) -> ()
  | Error e -> Alcotest.failf "expected io error, got %s" (Error.to_string e)
  | Ok c ->
    Serve.Client.close c;
    Alcotest.fail "connected to a missing socket");
  match Serve.Client.connect (Protocol.Tcp ("host.invalid", 7)) with
  | Error (Error.Io msg) ->
    check Alcotest.bool "names the unresolvable host" true
      (contains msg "unknown host")
  | Error e -> Alcotest.failf "expected io error, got %s" (Error.to_string e)
  | Ok c ->
    Serve.Client.close c;
    Alcotest.fail "an unresolvable name connected somewhere"

(* ---- generation swap ----------------------------------------------------- *)

(* Registry.swap: the generation counter bumps exactly on uid change,
   and a corrupt artifact keeps the previous good generation serving
   (skip-and-count). *)
let test_registry_swap_generations () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let reg = Registry.create () in
  let g1 = Lazy.force synopsis_a in
  check Alcotest.int "fresh name starts at 0" 0 (Registry.generation reg "imdb");
  check Alcotest.int "first swap" 1 (Registry.swap reg ~name:"imdb" g1);
  check Alcotest.int "same uid does not bump" 1 (Registry.swap reg ~name:"imdb" g1);
  let path2 = Filename.concat dir "g2.syn" in
  save_exn path2 (Lazy.force synopsis_a2);
  (match Registry.swap_from reg ~name:"imdb" ~path:path2 with
  | Ok gen -> check Alcotest.int "uid change bumps" 2 gen
  | Error e -> Alcotest.failf "swap_from: %s" (Error.to_string e));
  let expected_g2 =
    match Xcluster.Store.load path2 with
    | Ok s -> Xcluster.Query.estimate_uncached s (Xcluster.Query.parse "//movie/title")
    | Error e -> Alcotest.failf "load: %s" (Xc_core.Codec.error_to_string e)
  in
  let serving () =
    match Registry.find reg "imdb" with
    | Some syn -> Xcluster.Query.estimate_uncached syn (Xcluster.Query.parse "//movie/title")
    | None -> Alcotest.fail "name disappeared"
  in
  check Alcotest.bool "new generation serves" true
    (Int64.bits_of_float (serving ()) = Int64.bits_of_float expected_g2);
  (* a corrupt artifact: typed error, generation and serving unchanged *)
  let skipped0 = counter "serve.swap_skipped" in
  let bad = Filename.concat dir "bad.syn" in
  let oc = open_out bad in
  output_string oc "not a synopsis";
  close_out oc;
  (match Registry.swap_from reg ~name:"imdb" ~path:bad with
  | Ok _ -> Alcotest.fail "corrupt artifact admitted"
  | Error (Error.Codec _) -> ()
  | Error e -> Alcotest.failf "expected codec error, got %s" (Error.to_string e));
  check Alcotest.int "generation unchanged" 2 (Registry.generation reg "imdb");
  check Alcotest.bool "skip counted" true (counter "serve.swap_skipped" > skipped0);
  check Alcotest.bool "previous good generation still serves" true
    (Int64.bits_of_float (serving ()) = Int64.bits_of_float expected_g2)

(* A swap storm against a live daemon: reader domains hammer
   estimate_batch while another connection alternates the name between
   two generations. Every full answer vector must match one generation
   or the other — never a mix — and the generation counter must bump by
   exactly one per swap. *)
let test_daemon_swap_storm () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let path1 = Filename.concat dir "g1.syn" in
  let path2 = Filename.concat dir "g2.syn" in
  save_exn path1 (Lazy.force synopsis_a);
  save_exn path2 (Lazy.force synopsis_a2);
  let load p =
    match Xcluster.Store.load p with
    | Ok s -> s
    | Error e -> Alcotest.failf "load: %s" (Xc_core.Codec.error_to_string e)
  in
  let g1 = load path1 and g2 = load path2 in
  let qs = query_sources g1 in
  let sources = Array.map fst qs in
  let bits = Array.map Int64.bits_of_float in
  let e1 = bits (Array.map snd qs) in
  let e2 =
    bits
      (Array.map
         (fun (s, _) -> Xcluster.Query.estimate_uncached g2 (Xcluster.Query.parse s))
         qs)
  in
  check Alcotest.bool "generations answer differently" true (e1 <> e2);
  with_daemon [ ("imdb", path1) ] @@ fun endpoint ->
  let stop = Atomic.make false in
  let reader () =
    Domain.spawn (fun () ->
        let answered = ref 0 and torn = ref 0 and failed = ref 0 in
        while not (Atomic.get stop) do
          match Serve.Client.connect endpoint with
          | Error _ -> incr failed
          | Ok c ->
            (match Serve.Client.estimate_batch c ~synopsis:"imdb" sources with
            | Ok floats ->
              incr answered;
              let b = bits floats in
              if not (b = e1 || b = e2) then incr torn
            | Error _ -> incr failed);
            Serve.Client.close c
        done;
        (!answered, !torn, !failed))
  in
  let readers = List.init 2 (fun _ -> reader ()) in
  let gens = ref [] in
  (match Serve.Client.connect endpoint with
  | Error e -> Alcotest.failf "swapper connect: %s" (Error.to_string e)
  | Ok c ->
    Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
    for i = 1 to 14 do
      let path = if i land 1 = 1 then path2 else path1 in
      match Serve.Client.update c ~synopsis:"imdb" ~path with
      | Ok gen -> gens := gen :: !gens
      | Error e -> Alcotest.failf "swap %d: %s" i (Error.to_string e)
    done);
  Atomic.set stop true;
  let results = List.map Domain.join readers in
  (match List.rev !gens with
  | [] -> Alcotest.fail "no swaps"
  | g0 :: rest ->
    (* the initial source load is generation 1 *)
    check Alcotest.int "first swap is generation 2" 2 g0;
    ignore
      (List.fold_left
         (fun prev g ->
           check Alcotest.int "generation bumps by one per swap" (prev + 1) g;
           g)
         g0 rest));
  List.iter
    (fun (answered, torn, failed) ->
      check Alcotest.bool "readers made progress" true (answered > 0);
      check Alcotest.int "no torn generation observed" 0 torn;
      check Alcotest.int "no failed reads during swaps" 0 failed)
    results

(* ---- facade surface ------------------------------------------------------ *)

(* The submodule facade is the only supported surface (the flat aliases
   of the pre-redesign API are gone): its estimation entry points must
   agree bitwise with each other and with the underlying engine. *)
let test_facade_agreement () =
  let syn = Lazy.force synopsis_a in
  let q = Xcluster.Query.parse "//movie/title" in
  let cached = Xcluster.Query.estimate syn q in
  let uncached = Xcluster.Query.estimate_uncached syn q in
  check Alcotest.bool "Query.estimate = estimate_uncached" true
    (Int64.bits_of_float cached = Int64.bits_of_float uncached);
  (match Xcluster.Serve.estimate_batch syn [| q |] with
  | Error e -> Alcotest.failf "Serve.estimate_batch: %s" (Serve.Error.to_string e)
  | Ok batch ->
    check Alcotest.bool "Serve.estimate_batch = Query.estimate" true
      (Int64.bits_of_float batch.(0) = Int64.bits_of_float cached));
  (* a representative of every submodule family, so removals break the
     build *)
  let _ = Xcluster.Build.run in
  let _ = Xcluster.Build.budget in
  let _ = Xcluster.Build.compress_builder in
  let _ = Xcluster.Build.update in
  let _ = Xcluster.Build.update_and_seal in
  let _ = Xcluster.Store.save in
  let _ = Xcluster.Store.load in
  let _ = Xcluster.Store.verify in
  let _ = Xcluster.Serve.batch_engine in
  let _ = Xcluster.Metrics.json in
  ()

(* ---- suite -------------------------------------------------------------- *)

let () =
  Alcotest.run ~and_exit:false "serve"
    [ ( "protocol",
        [ Alcotest.test_case "request round-trip" `Quick test_request_roundtrip;
          Alcotest.test_case "response round-trip" `Quick test_response_roundtrip;
          Alcotest.test_case "truncation is total" `Quick test_truncation_total;
          Alcotest.test_case "forged CRC detected" `Quick test_forged_crc;
          Alcotest.test_case "hostile length rejected" `Quick test_hostile_length;
          Alcotest.test_case "unknown tag rejected" `Quick test_bad_tag;
          Alcotest.test_case "endpoint parsing" `Quick test_endpoint_parsing;
          Alcotest.test_case "errors cross the wire" `Quick test_error_wire ] );
      ( "options",
        [ Alcotest.test_case "validation" `Quick test_options_validation ] );
      ("lru", [ Alcotest.test_case "exact LRU policy" `Quick test_lru_policy ]);
      ( "registry",
        [ Alcotest.test_case "corrupt artifact skipped and counted" `Quick
            test_registry_skip_and_count;
          Alcotest.test_case "engine admission is bounded LRU" `Quick
            test_registry_engine_lru ] );
      ( "daemon",
        [ Alcotest.test_case "concurrent clients, bitwise answers" `Quick
            test_daemon_concurrent_bitwise;
          Alcotest.test_case "typed error frames" `Quick test_daemon_error_frames;
          Alcotest.test_case "survives socket fault storm" `Quick
            test_daemon_survives_socket_storm ] );
      ( "hardening",
        [ Alcotest.test_case "ping answers health" `Quick test_ping_health;
          Alcotest.test_case "slow-loris peer evicted by deadline" `Quick
            test_slow_loris_evicted;
          Alcotest.test_case "overload sheds, with_retry recovers" `Quick
            test_overload_shed_and_retry;
          Alcotest.test_case "admission limits refuse, connection policy" `Quick
            test_admission_limits;
          Alcotest.test_case "graceful drain finishes in-flight work" `Quick
            test_graceful_drain;
          Alcotest.test_case "connect failures are typed" `Quick
            test_client_connect_errors ] );
      ( "swap",
        [ Alcotest.test_case "registry generations" `Quick
            test_registry_swap_generations;
          Alcotest.test_case "daemon swap storm is atomic" `Quick
            test_daemon_swap_storm ] );
      ( "facade",
        [ Alcotest.test_case "submodule surface agrees bitwise" `Quick
            test_facade_agreement ] ) ]
