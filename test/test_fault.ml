(* Fault-tolerance tests for the persistence layer.

   The contract under test: decoding is TOTAL — any mutation of an
   encoded synopsis (truncation, bit rot, spliced bytes, hostile
   length fields) yields a typed [Error], never an exception and never
   an unbounded allocation — and [Safe_io.write_atomic] never damages
   the previous file, whatever fault interrupts the save. *)

module Codec = Xc_core.Codec
module S = Xc_core.Synopsis.Sealed
module Synopsis = Xc_core.Synopsis
module Reference = Xc_core.Reference
module Build = Xc_core.Build
module Rng = Xc_util.Rng
module Fault = Xc_util.Fault
module Safe_io = Xc_util.Safe_io

let check = Alcotest.check

(* small but representative: every value-summary kind appears *)
let datasets =
  [ ( "imdb",
      lazy
        (let doc = Xc_data.Imdb.generate ~seed:71 ~n_movies:40 () in
         let reference = Reference.build ~min_extent:4 doc in
         (* compress so TEXT buckets and pruned summaries are on disk too *)
         Build.run (Build.params ~bstr_kb:3 ~bval_kb:15 ()) reference) );
    ( "xmark",
      lazy
        (let doc = Xc_data.Xmark.generate ~seed:72 ~scale:0.01 () in
         Synopsis.freeze (Reference.build ~min_extent:4 doc)) );
    ( "dblp",
      lazy
        (let doc = Xc_data.Dblp.generate ~seed:73 ~n_authors:40 () in
         Synopsis.freeze (Reference.build ~min_extent:4 doc)) ) ]

let force name = Lazy.force (List.assoc name datasets)

(* ---- decode-totality fuzz ----------------------------------------------- *)

let mutate rng good =
  let n = String.length good in
  match Rng.int rng 4 with
  | 0 ->
    (* truncate *)
    String.sub good 0 (Rng.int rng (n + 1))
  | 1 ->
    (* flip one bit *)
    let b = Bytes.of_string good in
    let i = Rng.int rng n in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl Rng.int rng 8)));
    Bytes.unsafe_to_string b
  | 2 ->
    (* splice a random slice of the encoding over another position *)
    let b = Bytes.of_string good in
    let len = 1 + Rng.int rng (min 64 n) in
    let src = Rng.int rng (n - len + 1) in
    let dst = Rng.int rng (n - len + 1) in
    Bytes.blit_string good src b dst len;
    Bytes.unsafe_to_string b
  | _ ->
    (* overwrite a few bytes with noise (hostile length fields land here) *)
    let b = Bytes.of_string good in
    let len = 1 + Rng.int rng (min 16 n) in
    let dst = Rng.int rng (n - len + 1) in
    for i = dst to dst + len - 1 do
      Bytes.set b i (Char.chr (Rng.int rng 256))
    done;
    Bytes.unsafe_to_string b

let fuzz_iterations = 2_100

let test_fuzz name () =
  let syn = force name in
  let good = Codec.to_string syn in
  let rng = Rng.create 20_260_806 in
  let ok = ref 0 and errors = ref 0 in
  for i = 1 to fuzz_iterations do
    let corrupt = mutate rng good in
    match Codec.of_string corrupt with
    | Ok decoded ->
      incr ok;
      (* a lucky mutation may decode (e.g. a truncation that cut
         nothing, or a splice of identical bytes): it must still be a
         well-formed synopsis *)
      check Alcotest.bool "decoded synopsis validates" true (S.validate decoded = Ok ())
    | Error _ -> incr errors
    | exception exn ->
      Alcotest.failf "iteration %d: decode raised %s" i (Printexc.to_string exn)
  done;
  check Alcotest.bool "ran the full budget" true (!ok + !errors = fuzz_iterations);
  check Alcotest.bool "mutations were mostly detected" true (!errors > fuzz_iterations / 2)

(* every single-bit flip must be caught: the v2 format has no byte
   outside the magic/version/framing fields and the CRC-covered
   section payloads *)
let test_every_bit_flip_detected () =
  let doc =
    Xc_xml.Parser.parse_string
      "<db><paper><title>one</title><year>1999</year></paper><paper><title>two</title><year>2001</year></paper></db>"
  in
  let syn = Synopsis.freeze (Reference.build ~min_extent:1 doc) in
  let good = Codec.to_string syn in
  for i = 0 to String.length good - 1 do
    for bit = 0 to 7 do
      let b = Bytes.of_string good in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
      match Codec.of_string (Bytes.unsafe_to_string b) with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "flip of bit %d at byte %d went undetected" bit i
      | exception exn ->
        Alcotest.failf "flip at byte %d raised %s" i (Printexc.to_string exn)
    done
  done

let test_roundtrip_bit_exact () =
  List.iter
    (fun (name, syn) ->
      let syn = Lazy.force syn in
      let encoded = Codec.to_string syn in
      match Codec.of_string encoded with
      | Error e -> Alcotest.failf "%s: clean decode failed: %s" name (Codec.error_to_string e)
      | Ok decoded ->
        check Alcotest.bool
          (name ^ ": re-encoding is bit-exact")
          true
          (String.equal encoded (Codec.to_string decoded)))
    datasets

(* ---- hostile length fields ----------------------------------------------
   A forged file can carry a correct CRC over hostile content, so the
   decoder's pre-allocation bounds checks are the only line of
   defense. Each crafted input must fail fast with a typed error — not
   attempt a max_int-sized allocation. *)

let put_int buf n = Buffer.add_int64_be buf (Int64.of_int n)

let section tag payload =
  let b = Buffer.create (String.length payload + 24) in
  put_int b tag;
  put_int b (String.length payload);
  put_int b (Xc_util.Crc32.digest payload);
  Buffer.add_string b payload;
  Buffer.contents b

let forged_v2 ~header ~terms ~nodes =
  let b = Buffer.create 256 in
  Buffer.add_string b "XCLU";
  put_int b 2;
  Buffer.add_string b (section 1 header);
  Buffer.add_string b (section 2 terms);
  Buffer.add_string b (section 3 nodes);
  Buffer.contents b

let ints xs =
  let b = Buffer.create (8 * List.length xs) in
  List.iter (put_int b) xs;
  Buffer.contents b

let expect_bad_length what input =
  match Codec.of_string input with
  | Error (Codec.Bad_length _) -> ()
  | Error e ->
    (* a different typed error is acceptable; an allocation attempt or
       crash is not — but Bad_length is what the guards should say *)
    Alcotest.failf "%s: expected Bad_length, got %s" what (Codec.error_to_string e)
  | Ok _ -> Alcotest.failf "%s: hostile input decoded" what
  | exception exn -> Alcotest.failf "%s: raised %s" what (Printexc.to_string exn)

let test_hostile_lengths () =
  let header = ints [ 5; 0; 1 ] in
  (* term table claiming max_int entries *)
  expect_bad_length "huge term count"
    (forged_v2 ~header ~terms:(ints [ max_int ]) ~nodes:"");
  (* node count far beyond what the section could hold *)
  expect_bad_length "huge node count"
    (forged_v2 ~header:(ints [ 5; 0; max_int ]) ~terms:(ints [ 0 ]) ~nodes:"");
  (* negative node count *)
  expect_bad_length "negative node count"
    (forged_v2 ~header:(ints [ 5; 0; -7 ]) ~terms:(ints [ 0 ]) ~nodes:"");
  (* a node whose histogram claims max_int buckets *)
  let node =
    String.concat ""
      [ ints [ 0 ];
        (* sid *)
        ints [ 1 ];
        "p";
        (* label, length 1 *)
        ints [ 1; 3 ];
        (* vtype numeric, count 3 *)
        ints [ 1; max_int ]
        (* vsumm tag Vnum, hostile bucket count *) ]
  in
  expect_bad_length "huge histogram"
    (forged_v2 ~header:(ints [ 5; 0; 1 ]) ~terms:(ints [ 0 ]) ~nodes:node);
  (* a string whose length runs past its section *)
  let node = ints [ 0; max_int ] in
  expect_bad_length "string past section"
    (forged_v2 ~header:(ints [ 5; 0; 1 ]) ~terms:(ints [ 0 ]) ~nodes:node)

(* ---- version negotiation ------------------------------------------------- *)

let est syn q = Xc_core.Estimate.selectivity syn (Xc_twig.Twig_parse.parse q)

let test_v1_still_decodes () =
  let syn = force "imdb" in
  let v1 = Codec.to_string_v1 syn in
  match Codec.of_string v1 with
  | Error e -> Alcotest.failf "v1 decode failed: %s" (Codec.error_to_string e)
  | Ok decoded ->
    check Alcotest.int "same nodes" (S.n_nodes syn) (S.n_nodes decoded);
    check Alcotest.int "same edges" (S.n_edges syn) (S.n_edges decoded);
    List.iter
      (fun q ->
        check (Alcotest.float 0.0) ("estimate " ^ q) (est syn q) (est decoded q))
      [ "//movie/year[. > 1990]"; "//movie[year > 1990]"; "//movie/title" ];
    (match Codec.verify_string v1 with
    | Ok info ->
      check Alcotest.int "v1 version" 1 info.Codec.i_version;
      check Alcotest.bool "v1 has no checksums" false info.Codec.i_checksummed
    | Error e -> Alcotest.failf "v1 verify failed: %s" (Codec.error_to_string e))

let test_unsupported_version () =
  let b = Buffer.create 16 in
  Buffer.add_string b "XCLU";
  put_int b 99;
  match Codec.of_string (Buffer.contents b) with
  | Error (Codec.Unsupported_version 99) -> ()
  | Error e -> Alcotest.failf "expected Unsupported_version, got %s" (Codec.error_to_string e)
  | Ok _ -> Alcotest.fail "version-99 input decoded"

(* ---- XC_FAULTS parsing ---------------------------------------------------- *)

let test_fault_config_parsing () =
  (match Fault.config_of_string "seed=9,p=0.25,kinds=truncate+eio,sites=safe_io.rename" with
  | Ok cfg ->
    check Alcotest.int "seed" 9 cfg.Fault.seed;
    check (Alcotest.float 0.0) "prob" 0.25 cfg.Fault.prob;
    check Alcotest.bool "kinds" true (cfg.Fault.kinds = [ Fault.Truncate; Fault.Eio ]);
    check Alcotest.bool "sites" true (cfg.Fault.sites = [ "safe_io.rename" ])
  | Error msg -> Alcotest.failf "parse failed: %s" msg);
  (match Fault.config_of_string "kinds=all" with
  | Ok cfg -> check Alcotest.int "all kinds" 5 (List.length cfg.Fault.kinds)
  | Error msg -> Alcotest.failf "parse failed: %s" msg);
  List.iter
    (fun bad ->
      match Fault.config_of_string bad with
      | Ok _ -> Alcotest.failf "accepted malformed spec %S" bad
      | Error _ -> ())
    [ "seed=x"; "p=2.0"; "kinds=frobnicate"; "nonsense"; "what=ever" ]

(* ---- Safe_io crash simulation --------------------------------------------
   The atomic-replace property: however a save dies — before, during,
   or after the temp write, at fsync, or at the rename — the previous
   file's bytes are what a reader sees. *)

let with_faults cfg f =
  let previous = Fault.current () in
  Fault.configure (Some cfg);
  Fun.protect ~finally:(fun () -> Fault.configure previous) f

let faults ?(sites = []) ?(prob = 1.0) kinds = { Fault.seed = 5; prob; kinds; sites }

let read_exn path =
  match Safe_io.read path with
  | Ok s -> s
  | Error e -> Alcotest.failf "read %s failed: %s" path (Safe_io.error_to_string e)

let in_temp_dir f =
  let dir = Filename.temp_file "xc_fault" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

let test_atomic_replace_survives_faults () =
  in_temp_dir @@ fun dir ->
  let path = Filename.concat dir "synopsis.bin" in
  (match Safe_io.write_atomic path "generation-one" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "initial write failed: %s" (Safe_io.error_to_string e));
  (* a crash between temp-write and rename: the old file is intact *)
  List.iter
    (fun (what, kinds, sites) ->
      with_faults (faults ~sites kinds) (fun () ->
          match Safe_io.write_atomic path "generation-two" with
          | Ok () -> Alcotest.failf "%s: write unexpectedly succeeded" what
          | Error _ ->
            check Alcotest.string
              (what ^ ": previous contents intact")
              "generation-one" (read_exn path);
            check Alcotest.(list string)
              (what ^ ": no temp litter")
              [ "synopsis.bin" ]
              (Array.to_list (Sys.readdir dir))))
    [ ("die at open", [ Fault.Eio ], [ "safe_io.open" ]);
      ("die mid-write", [ Fault.Eio ], [ "safe_io.write" ]);
      ("disk full", [ Fault.Enospc ], [ "safe_io.write" ]);
      ("short write", [ Fault.Short_write ], [ "safe_io.write" ]);
      ("die at fsync", [ Fault.Eio ], [ "safe_io.fsync" ]);
      ("die at rename", [ Fault.Eio ], [ "safe_io.rename" ]) ];
  (* with faults cleared the replace goes through *)
  (match Safe_io.write_atomic path "generation-two" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "clean write failed: %s" (Safe_io.error_to_string e));
  check Alcotest.string "replaced" "generation-two" (read_exn path)

let test_save_load_under_faults () =
  in_temp_dir @@ fun dir ->
  let path = Filename.concat dir "synopsis.syn" in
  let syn = force "imdb" in
  (match Codec.save path syn with
  | Ok () -> ()
  | Error e -> Alcotest.failf "clean save failed: %s" (Codec.error_to_string e));
  let golden = read_exn path in
  with_faults (faults ~prob:0.5 [ Fault.Truncate; Fault.Bit_flip; Fault.Enospc; Fault.Eio; Fault.Short_write ])
    (fun () ->
      for _ = 1 to 60 do
        (* every save outcome is typed, and a failed save never
           touches the target *)
        (match Codec.save path syn with
        | Ok () -> ()
        | Error (Codec.Io _) -> ()
        | Error e -> Alcotest.failf "unexpected save error: %s" (Codec.error_to_string e)
        | exception exn -> Alcotest.failf "save raised %s" (Printexc.to_string exn));
        (* every load outcome is typed: reads pass through the fault
           sites, so truncation and bit rot surface as decode errors *)
        match Codec.load path with
        | Ok decoded ->
          check Alcotest.int "loaded node count" (S.n_nodes syn) (S.n_nodes decoded)
        | Error _ -> ()
        | exception exn -> Alcotest.failf "load raised %s" (Printexc.to_string exn)
      done);
  (* after the fault storm: the file is still a valid synopsis *)
  check Alcotest.string "target only ever held complete encodings" golden (read_exn path);
  match Codec.load path with
  | Ok decoded -> check Alcotest.int "still loadable" (S.n_nodes syn) (S.n_nodes decoded)
  | Error e -> Alcotest.failf "post-fault load failed: %s" (Codec.error_to_string e)

(* ---- verify -------------------------------------------------------------- *)

let test_verify_file () =
  in_temp_dir @@ fun dir ->
  let path = Filename.concat dir "v.syn" in
  let syn = force "dblp" in
  (match Codec.save path syn with
  | Ok () -> ()
  | Error e -> Alcotest.failf "save failed: %s" (Codec.error_to_string e));
  (match Codec.verify path with
  | Ok info ->
    check Alcotest.int "version" 3 info.Codec.i_version;
    check Alcotest.int "nodes" (S.n_nodes syn) info.Codec.i_nodes;
    check Alcotest.bool "checksummed" true info.Codec.i_checksummed
  | Error e -> Alcotest.failf "verify failed: %s" (Codec.error_to_string e));
  (* corrupt one payload byte on disk: verify must catch it without
     decoding *)
  let b = Bytes.of_string (read_exn path) in
  Bytes.set b (Bytes.length b - 1) '\255';
  (match Safe_io.write_atomic path (Bytes.unsafe_to_string b) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "rewrite failed: %s" (Safe_io.error_to_string e));
  match Codec.verify path with
  | Error (Codec.Checksum_mismatch { section = "vsumm_blob"; _ }) -> ()
  | Error e ->
    Alcotest.failf "expected vsumm_blob checksum mismatch, got %s" (Codec.error_to_string e)
  | Ok _ -> Alcotest.fail "verify accepted a corrupt file"

let () =
  Alcotest.run ~and_exit:false "fault"
    [ ( "decode totality",
        [ Alcotest.test_case "fuzz imdb (2100 mutations)" `Quick (test_fuzz "imdb");
          Alcotest.test_case "fuzz xmark (2100 mutations)" `Quick (test_fuzz "xmark");
          Alcotest.test_case "fuzz dblp (2100 mutations)" `Quick (test_fuzz "dblp");
          Alcotest.test_case "every bit flip detected" `Quick test_every_bit_flip_detected;
          Alcotest.test_case "clean round trip is bit-exact" `Quick test_roundtrip_bit_exact;
          Alcotest.test_case "hostile lengths rejected pre-allocation" `Quick
            test_hostile_lengths ] );
      ( "versioning",
        [ Alcotest.test_case "v1 files still decode" `Quick test_v1_still_decodes;
          Alcotest.test_case "unknown version rejected" `Quick test_unsupported_version ] );
      ( "fault harness",
        [ Alcotest.test_case "XC_FAULTS parsing" `Quick test_fault_config_parsing;
          Alcotest.test_case "atomic replace survives faults" `Quick
            test_atomic_replace_survives_faults;
          Alcotest.test_case "save/load under fault storm" `Quick
            test_save_load_under_faults ] );
      ("verify", [ Alcotest.test_case "verify catches disk corruption" `Quick test_verify_file ])
    ]
