(* End-to-end integration tests across the whole stack: generate or
   parse documents, build synopses, and check system-level properties
   (structural exactness on references, predicate monotonicity, budget
   monotonicity, persistence, designated-path workloads). *)

open Xc_xml
module Synopsis = Xc_core.Synopsis
module Reference = Xc_core.Reference
module Build = Xc_core.Build
module Estimate = Xc_core.Estimate
module Workload = Xc_twig.Workload

let check = Alcotest.check
let checkf msg = Alcotest.check (Alcotest.float 1e-6) msg

let exact doc q = Xc_twig.Twig_eval.selectivity doc (Xc_twig.Twig_parse.parse q)
let est syn q = Estimate.selectivity syn (Xc_twig.Twig_parse.parse q)

(* ---- structural exactness on references, across generators ------------- *)

let test_struct_exact_xmark () =
  let doc = Xc_data.Xmark.generate ~seed:51 ~scale:0.04 () in
  let reference = Synopsis.freeze (Reference.build ~min_extent:1 doc) in
  List.iter
    (fun q -> checkf ("exact " ^ q) (exact doc q) (est reference q))
    [ "//item"; "//person/name"; "//open_auction/bidder";
      "/site/regions/*/item/quantity"; "//parlist//text";
      "//closed_auction[annotation]/price"; "//person[profile/age]" ]

let struct_exact_random_docs =
  QCheck.Test.make ~name:"reference estimates structural twigs exactly" ~count:30
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Xc_util.Rng.create seed in
      let tags = [| "a"; "b"; "c"; "d" |] in
      let rec gen depth =
        let n = if depth >= 3 then 0 else Xc_util.Rng.int rng 4 in
        Node.make (Xc_util.Rng.pick rng tags)
          ~children:(List.init n (fun _ -> gen (depth + 1)))
      in
      let doc =
        Document.create (Node.make "r" ~children:(List.init 3 (fun _ -> gen 0)))
      in
      let reference = Synopsis.freeze (Reference.build ~min_extent:1 doc) in
      List.for_all
        (fun q -> Float.abs (exact doc q -. est reference q) < 1e-6)
        [ "//a"; "//b//c"; "/r/*/d"; "//a[b]"; "//c/d" ])

(* ---- predicate and budget monotonicity --------------------------------- *)

let test_predicate_monotonicity () =
  (* under any synopsis, adding a predicate cannot increase the estimate *)
  let doc = Xc_data.Imdb.generate ~seed:52 ~n_movies:300 () in
  let reference = Reference.build doc in
  let syn = Build.run (Build.params ~bstr_kb:4 ~bval_kb:30 ()) reference in
  List.iter
    (fun (broad, narrow) ->
      let b = est syn broad and n = est syn narrow in
      if n > b +. 1e-6 then
        Alcotest.failf "%s (%f) should not exceed %s (%f)" narrow n broad b)
    [ ("//movie/year", "//movie/year[. > 1990]");
      ("//movie/title", "//movie/title[. contains(a)]");
      ("//movie/plot", "//movie/plot[. ftcontains(xml)]");
      ("//movie[year > 1990]", "//movie[year > 1990][box_office > 0]") ]

let test_budget_monotone_size () =
  let doc = Xc_data.Imdb.generate ~seed:53 ~n_movies:300 () in
  let reference = Reference.build ~min_extent:8 doc in
  let sizes =
    List.map
      (fun kb ->
        let syn = Build.run (Build.params ~bstr_kb:kb ~bval_kb:20 ()) reference in
        Synopsis.Sealed.structural_bytes syn)
      [ 1; 2; 4; 8 ]
  in
  let rec nondecreasing = function
    | a :: (b :: _ as rest) -> a <= b && nondecreasing rest
    | _ -> true
  in
  check Alcotest.bool "structural size grows with budget" true (nondecreasing sizes)

(* ---- total-count invariants --------------------------------------------- *)

let test_wildcard_total_counts () =
  let doc = Xc_data.Dblp.generate ~seed:54 ~n_authors:80 () in
  let reference = Reference.build doc in
  (* //* counts every element except the root... plus the root: descendant
     of the virtual document node includes the root element *)
  checkf "//* = all elements" (float_of_int (Document.n_elements doc))
    (est (Synopsis.freeze reference) "//*");
  (* and the same must hold on any compressed synopsis: merges preserve
     extent mass *)
  let syn = Build.run (Build.params ~bstr_kb:1 ~bval_kb:10 ()) reference in
  checkf "compressed //* = all elements" (float_of_int (Document.n_elements doc))
    (est syn "//*")

(* ---- file round trip ------------------------------------------------------ *)

let test_file_roundtrip_pipeline () =
  let doc = Xc_data.Imdb.generate ~seed:55 ~n_movies:120 () in
  let path = Filename.temp_file "xcluster" ".xml" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Writer.to_file path doc;
      let typing = Parser.typing_of_assoc Xc_data.Imdb.value_typing in
      let doc2 = Parser.parse_file ~typing path in
      check Alcotest.int "same elements" (Document.n_elements doc)
        (Document.n_elements doc2);
      (* and the re-parsed document supports the full pipeline *)
      let reference = Reference.build doc2 in
      let syn = Build.run (Build.params ~bstr_kb:2 ~bval_kb:16 ()) reference in
      List.iter
        (fun q ->
          let t = exact doc2 q and e = est syn q in
          if t > 0.0 && Float.abs (e -. t) /. t > 1.0 then
            Alcotest.failf "%s way off: exact %f est %f" q t e)
        [ "//movie"; "//movie/cast/actor"; "//movie/director/name" ])

(* ---- designated-path workloads ------------------------------------------- *)

let test_workload_respects_designated_paths () =
  let doc = Xc_data.Imdb.generate ~seed:56 ~n_movies:200 () in
  let designated =
    [ List.map Label.of_string [ "imdb"; "movie"; "year" ];
      List.map Label.of_string [ "imdb"; "movie"; "title" ] ]
  in
  let spec =
    { Workload.default_spec with n_queries = 40; value_paths = Some designated }
  in
  let wl = Workload.generate ~spec doc in
  (* every value query's class must be numeric or string (the only
     designated types); no text queries can exist *)
  List.iter
    (fun e ->
      match e.Workload.cls with
      | Xc_twig.Twig_query.Ctext -> Alcotest.fail "text predicate on undesignated path"
      | _ -> ())
    wl

(* ---- persistence across the pipeline -------------------------------------- *)

let test_persistence_matches_live_estimates () =
  let doc = Xc_data.Xmark.generate ~seed:57 ~scale:0.03 () in
  let reference = Reference.build ~min_extent:4 doc in
  let syn = Build.run (Build.params ~bstr_kb:4 ~bval_kb:30 ()) reference in
  let loaded = Xc_core.Codec.of_string_exn (Xc_core.Codec.to_string syn) in
  let spec = { Workload.default_spec with n_queries = 30 } in
  let wl = Workload.generate ~spec doc in
  List.iter
    (fun e ->
      checkf "same estimate"
        (Estimate.selectivity syn e.Workload.query)
        (Estimate.selectivity loaded e.Workload.query))
    wl

(* ---- auto split ------------------------------------------------------------ *)

let test_auto_split_within_candidates () =
  let doc = Xc_data.Dblp.generate ~seed:58 ~n_authors:100 () in
  let reference = Reference.build ~min_extent:8 ~value_min_extent:64 doc in
  let sample syn = est syn "//paper" in
  (* a degenerate sample functional still yields a well-formed winner *)
  let params, syn = Build.auto_split ~total_kb:30 ~sample reference in
  check Alcotest.bool "bstr within budget" true (params.Build.bstr <= Xc_core.Size.kb 30);
  check Alcotest.bool "synopsis valid" true (Synopsis.Sealed.validate syn = Ok ())

let () =
  Alcotest.run ~and_exit:false "xc_integration"
    [ ( "exactness",
        [ Alcotest.test_case "xmark structural" `Quick test_struct_exact_xmark;
          QCheck_alcotest.to_alcotest struct_exact_random_docs ] );
      ( "monotonicity",
        [ Alcotest.test_case "predicates shrink estimates" `Quick
            test_predicate_monotonicity;
          Alcotest.test_case "budget grows size" `Slow test_budget_monotone_size ] );
      ( "invariants",
        [ Alcotest.test_case "wildcard totals" `Quick test_wildcard_total_counts ] );
      ( "roundtrips",
        [ Alcotest.test_case "file pipeline" `Quick test_file_roundtrip_pipeline;
          Alcotest.test_case "persistence estimates" `Quick
            test_persistence_matches_live_estimates ] );
      ( "workloads",
        [ Alcotest.test_case "designated paths" `Quick
            test_workload_respects_designated_paths ] );
      ( "auto-split",
        [ Alcotest.test_case "well-formed winner" `Slow test_auto_split_within_candidates ] ) ]


(* ---- differential testing + explain (appended suite) --------------------- *)

let random_twig rng =
  (* a random structural twig over the imdb tag set, as a string *)
  let tags = [| "movie"; "cast"; "actor"; "name"; "title"; "year"; "director";
                "plot"; "genre"; "episodes"; "episode" |] in
  let step () =
    (if Xc_util.Rng.bool rng then "//" else "/")
    ^ if Xc_util.Rng.chance rng 0.1 then "*" else Xc_util.Rng.pick rng tags
  in
  let buf = Buffer.create 32 in
  Buffer.add_string buf "//movie";
  let n = 1 + Xc_util.Rng.int rng 2 in
  for _ = 1 to n do
    Buffer.add_string buf (step ())
  done;
  if Xc_util.Rng.chance rng 0.4 then begin
    (* an existential branch *)
    let b = Buffer.contents buf in
    Buffer.clear buf;
    Buffer.add_string buf "//movie[";
    Buffer.add_string buf (Xc_util.Rng.pick rng tags);
    Buffer.add_string buf "]";
    Buffer.add_string buf (String.sub b 7 (String.length b - 7))
  end;
  Buffer.contents buf

let differential_struct_estimates =
  (* the reference synopsis must agree with the exact evaluator on any
     structural twig, not just hand-picked ones *)
  let doc = Xc_data.Imdb.generate ~seed:60 ~n_movies:150 () in
  let reference = Synopsis.freeze (Reference.build ~min_extent:1 doc) in
  QCheck.Test.make ~name:"reference = exact evaluator on random struct twigs"
    ~count:60
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Xc_util.Rng.create seed in
      let q = random_twig rng in
      let t = exact doc q and e = est reference q in
      Float.abs (t -. e) <= 1e-6 *. Float.max 1.0 t)

let test_explain_masses () =
  let doc = Xc_data.Imdb.generate ~seed:61 ~n_movies:100 () in
  let reference = Synopsis.freeze (Reference.build doc) in
  (* steps without predicates coalesce into one edge, so this twig has a
     single non-root variable bound to actor clusters *)
  let q = Xc_twig.Twig_parse.parse "//movie/cast/actor" in
  let explanation = Estimate.explain reference q in
  check Alcotest.int "one variable" 1 (List.length explanation);
  (* the leaf variable's total expected bindings equals the estimate *)
  let leaf = List.hd explanation in
  let total =
    List.fold_left (fun acc (_, _, w) -> acc +. w) 0.0 leaf.Estimate.bindings
  in
  checkf "leaf mass = selectivity" (Estimate.selectivity reference q) total;
  (* all clusters reported for the actor variable are labelled actor *)
  List.iter
    (fun (_, label, _) -> check Alcotest.string "label" "actor" label)
    leaf.Estimate.bindings

let test_explain_with_predicates () =
  let doc = Xc_data.Imdb.generate ~seed:62 ~n_movies:100 () in
  let reference = Synopsis.freeze (Reference.build doc) in
  let q = Xc_twig.Twig_parse.parse "//movie/year[. > 1990]" in
  let broad = Estimate.explain reference (Xc_twig.Twig_parse.parse "//movie/year") in
  let narrow = Estimate.explain reference q in
  let mass expl =
    List.fold_left
      (fun acc e -> List.fold_left (fun a (_, _, w) -> a +. w) acc e.Estimate.bindings)
      0.0 expl
  in
  check Alcotest.bool "predicate reduces bound mass" true (mass narrow < mass broad)

let () =
  Alcotest.run "xc_integration_diff"
    [ ( "differential",
        [ QCheck_alcotest.to_alcotest differential_struct_estimates ] );
      ( "explain",
        [ Alcotest.test_case "masses" `Quick test_explain_masses;
          Alcotest.test_case "with predicates" `Quick test_explain_with_predicates ] ) ]
