(* Tests for Xc_exp: the error metric and the experiment runner at a
   very small scale (the full scale runs in bench/main.ml). *)

open Xc_exp
module Workload = Xc_twig.Workload
module Twig_query = Xc_twig.Twig_query

let check = Alcotest.check
let checkf msg = Alcotest.check (Alcotest.float 1e-9) msg

let entry ?(cls = Twig_query.Cstruct) count =
  { Workload.query = Xc_twig.Twig_parse.parse "//x"; true_count = count; cls }

let scored truth est cls = { Error_metric.entry = entry ~cls truth; est }

(* ---- Error_metric --------------------------------------------------------- *)

let test_relative_error () =
  checkf "exact" 0.0 (Error_metric.relative_error ~sanity:1.0 ~truth:10.0 ~est:10.0);
  checkf "half" 0.5 (Error_metric.relative_error ~sanity:1.0 ~truth:10.0 ~est:5.0);
  checkf "over" 1.0 (Error_metric.relative_error ~sanity:1.0 ~truth:10.0 ~est:20.0);
  (* the sanity bound caps the contribution of tiny counts *)
  checkf "sanity caps" 2.0 (Error_metric.relative_error ~sanity:5.0 ~truth:1.0 ~est:11.0);
  checkf "without sanity it would be 10" 10.0
    (Error_metric.relative_error ~sanity:1.0 ~truth:1.0 ~est:11.0)

let test_mean () =
  checkf "empty" 0.0 (Error_metric.mean []);
  checkf "avg" 2.0 (Error_metric.mean [ 1.0; 2.0; 3.0 ])

let test_overall_and_per_class () =
  let scored =
    [ scored 10.0 10.0 Twig_query.Cstruct;    (* err 0 *)
      scored 10.0 5.0 Twig_query.Cnumeric;    (* err 0.5 *)
      scored 10.0 20.0 Twig_query.Cnumeric ]  (* err 1.0 *)
  in
  checkf "overall" 0.5 (Error_metric.overall_relative ~sanity:1.0 scored);
  let per = Error_metric.per_class_relative ~sanity:1.0 scored in
  checkf "struct" 0.0 (List.assoc Twig_query.Cstruct per);
  checkf "numeric" 0.75 (List.assoc Twig_query.Cnumeric per);
  check Alcotest.bool "no string row" true
    (List.assoc_opt Twig_query.Cstring per = None)

let test_low_count_absolute () =
  let scored =
    [ scored 2.0 5.0 Twig_query.Ctext;   (* low count: abs err 3 *)
      scored 3.0 3.0 Twig_query.Ctext;   (* low count: abs err 0 *)
      scored 100.0 90.0 Twig_query.Ctext ] (* above bound: excluded *)
  in
  match Error_metric.low_count_absolute ~sanity:10.0 scored with
  | [ (cls, abs_err, avg_truth) ] ->
    check Alcotest.bool "text class" true (cls = Twig_query.Ctext);
    checkf "avg abs err" 1.5 abs_err;
    checkf "avg truth" 2.5 avg_truth
  | other -> Alcotest.failf "unexpected rows: %d" (List.length other)

(* ---- Runner (miniature scale) --------------------------------------------- *)

let mini () = Runner.imdb ~scale:0.03 ~n_queries:40 ()

let test_runner_dataset () =
  let ds = mini () in
  check Alcotest.bool "workload nonempty" true (List.length ds.Runner.workload > 0);
  check Alcotest.bool "sanity >= 1" true (ds.Runner.sanity >= 1.0);
  check Alcotest.bool "reference valid" true
    (Xc_core.Synopsis.Builder.validate ds.Runner.reference = Ok ())

let test_runner_table1 () =
  let ds = mini () in
  let row = Runner.table1 ds in
  check Alcotest.string "name" "IMDB" row.Runner.ds;
  check Alcotest.int "elements" (Xc_xml.Document.n_elements ds.Runner.doc)
    row.Runner.n_elements;
  check Alcotest.bool "file size positive" true (row.Runner.file_mb > 0.0);
  check Alcotest.bool "value <= total nodes" true
    (row.Runner.value_nodes <= row.Runner.total_nodes)

let test_runner_table2 () =
  let ds = mini () in
  let row = Runner.table2 ds in
  check Alcotest.bool "struct avg positive" true (row.Runner.avg_struct > 0.0);
  check Alcotest.bool "pred avg positive" true (row.Runner.avg_pred > 0.0)

let test_runner_fig8_small () =
  let ds = mini () in
  let points = Runner.fig8 ~budgets_kb:[ 0; 4 ] ~bval_kb:30 ds in
  check Alcotest.int "two points" 2 (List.length points);
  List.iter
    (fun p ->
      check Alcotest.bool "error finite" true (Float.is_finite p.Runner.overall_err);
      check Alcotest.bool "error nonneg" true (p.Runner.overall_err >= 0.0);
      check Alcotest.int "total adds bval" (p.Runner.bstr_kb + 30) p.Runner.total_kb)
    points

let test_runner_fig9_small () =
  let ds = mini () in
  let rows = Runner.fig9 ~bstr_kb:4 ~bval_kb:30 ds in
  List.iter
    (fun (_, abs_err, avg_truth) ->
      check Alcotest.bool "abs err nonneg" true (abs_err >= 0.0);
      check Alcotest.bool "truth below sanity" true (avg_truth <= ds.Runner.sanity))
    rows

let test_runner_negative_small () =
  let ds = mini () in
  let avg = Runner.negative_check ~bstr_kb:4 ~bval_kb:30 ~n:20 ds in
  (* the paper: "consistently close to zero estimates" *)
  check Alcotest.bool "near zero" true (avg < 5.0)

let () =
  Alcotest.run ~and_exit:false "xc_exp"
    [ ( "error_metric",
        [ Alcotest.test_case "relative error" `Quick test_relative_error;
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "overall + per-class" `Quick test_overall_and_per_class;
          Alcotest.test_case "low-count absolute" `Quick test_low_count_absolute ] );
      ( "runner",
        [ Alcotest.test_case "dataset" `Slow test_runner_dataset;
          Alcotest.test_case "table1" `Slow test_runner_table1;
          Alcotest.test_case "table2" `Slow test_runner_table2;
          Alcotest.test_case "fig8 small" `Slow test_runner_fig8_small;
          Alcotest.test_case "fig9 small" `Slow test_runner_fig9_small;
          Alcotest.test_case "negative small" `Slow test_runner_negative_small ] ) ]


(* ---- Report rendering (appended suite) ------------------------------------ *)

let render f =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  f ppf;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_report_table1 () =
  let row =
    { Runner.ds = "IMDB"; file_mb = 5.7; n_elements = 210_186; ref_kb = 546.0;
      value_nodes = 66; total_nodes = 1922 }
  in
  let out = render (fun ppf -> Report.table1 ppf [ row ]) in
  check Alcotest.bool "title" true (contains "Table 1" out);
  check Alcotest.bool "row name" true (contains "IMDB" out);
  check Alcotest.bool "value/total" true (contains "66 / 1922" out)

let test_report_fig8 () =
  let point =
    { Runner.bstr_kb = 10; total_kb = 160; overall_err = 0.123;
      class_errs = [ (Twig_query.Cstruct, 0.01); (Twig_query.Ctext, 0.33) ] }
  in
  let out = render (fun ppf -> Report.fig8 ppf ~name:"IMDB" [ point ]) in
  check Alcotest.bool "header columns" true (contains "Overall" out);
  check Alcotest.bool "percentage" true (contains "12.3" out);
  (* classes without data render as a dash *)
  check Alcotest.bool "missing class dash" true (contains "-" out)

let test_report_fig9 () =
  let rows = [ ("IMDB", [ (Twig_query.Cstring, 5.12, 20.0) ]) ] in
  let out = render (fun ppf -> Report.fig9 ppf rows) in
  check Alcotest.bool "class row" true (contains "String" out);
  check Alcotest.bool "value" true (contains "5.12" out)

let test_report_auto_split_marks_winner () =
  let out =
    render (fun ppf ->
        Report.auto_split ppf ~name:"X" [ (0, 200, 0.3); (10, 190, 0.1) ])
  in
  check Alcotest.bool "winner marked" true (contains "<- winner" out)

let test_pct () =
  checkf "pct" 12.5 (Report.pct 0.125)

let () =
  Alcotest.run "xc_exp_report"
    [ ( "report",
        [ Alcotest.test_case "table1" `Quick test_report_table1;
          Alcotest.test_case "fig8" `Quick test_report_fig8;
          Alcotest.test_case "fig9" `Quick test_report_fig9;
          Alcotest.test_case "auto-split winner" `Quick test_report_auto_split_marks_winner;
          Alcotest.test_case "pct" `Quick test_pct ] ) ]
