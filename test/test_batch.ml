(* Tests for the batched estimation engine: transition matrices must
   store exactly the floats the step-by-step estimator computes,
   Plan.Batch must be bit-identical to Estimate.selectivity on every
   dataset's workload, results must not depend on the worker count, and
   the path-expression intern and histogram quantiles that serve it
   must behave. *)

module Synopsis = Xc_core.Synopsis
module S = Synopsis.Sealed
module Estimate = Xc_core.Estimate
module Plan = Xc_core.Plan
module Transition = Xc_core.Transition
module Build = Xc_core.Build
module Runner = Xc_exp.Runner
module Metrics = Xc_util.Metrics
module Path_expr = Xc_twig.Path_expr

let check = Alcotest.check

(* exact equality: the batch engine's contract is bit-identical floats *)
let check0 msg = Alcotest.check (Alcotest.float 0.0) msg

let bits_equal a b = Int64.bits_of_float a = Int64.bits_of_float b

(* every distinct path expression labelling an edge of the workload *)
let workload_exprs ds =
  let tbl = Hashtbl.create 64 in
  let rec walk n =
    List.iter
      (fun (expr, child) ->
        Hashtbl.replace tbl expr ();
        walk child)
      n.Xc_twig.Twig_query.edges
  in
  List.iter (fun e -> walk e.Xc_twig.Workload.query.Xc_twig.Twig_query.root) ds.Runner.workload;
  Hashtbl.fold (fun e () acc -> e :: acc) tbl []

let small_synopsis ds =
  Build.run (Build.budget ~bstr_kb:10 ~bval_kb:60 ()) ds.Runner.reference

(* ---- transition matrices ---------------------------------------------- *)

(* every row of every workload expression's matrix must be bitwise the
   dist Estimate.reach_dist builds from that source — including the
   multi-step compositions and bounded descendant closures *)
let test_matrix_rows () =
  let ds = Runner.imdb ~scale:0.01 ~n_queries:40 () in
  let syn = small_synopsis ds in
  let exprs = workload_exprs ds in
  check Alcotest.bool "workload has expressions" true (List.length exprs > 0);
  List.iter
    (fun expr ->
      let mt = Transition.build syn expr in
      check Alcotest.int "one row per node" (S.n_nodes syn) (Transition.n_rows mt);
      for u = 0 to S.n_nodes syn - 1 do
        let row = Transition.row mt u in
        let ref_d = Estimate.reach_dist syn expr u in
        check Alcotest.(array int) "row targets" ref_d.Estimate.d_idx row.Estimate.d_idx;
        Array.iteri
          (fun i w ->
            check Alcotest.bool "row weight bits" true
              (bits_equal w ref_d.Estimate.d_w.(i)))
          row.Estimate.d_w
      done)
    exprs

let test_matrix_root_row () =
  let ds = Runner.imdb ~scale:0.01 ~n_queries:40 () in
  let syn = small_synopsis ds in
  List.iter
    (fun expr ->
      let r = Transition.root_row syn expr in
      let ref_d = Estimate.root_reach_dist syn expr in
      check Alcotest.(array int) "root targets" ref_d.Estimate.d_idx r.Estimate.d_idx;
      Array.iteri
        (fun i w ->
          check Alcotest.bool "root weight bits" true
            (bits_equal w ref_d.Estimate.d_w.(i)))
        r.Estimate.d_w)
    (workload_exprs ds)

(* ---- batch = uncached, on every dataset -------------------------------- *)

let batch_equivalence_on ds =
  let syn = small_synopsis ds in
  let engine = Plan.Batch.create syn in
  let queries = Runner.workload_queries ds in
  let cold = Plan.Batch.run ~domains:1 engine queries in
  let warm = Plan.Batch.run ~domains:1 engine queries in
  Array.iteri
    (fun i q ->
      let uncached = Estimate.selectivity syn q in
      check0 "batch cold = uncached" uncached cold.(i);
      check0 "batch warm = uncached" uncached warm.(i))
    queries;
  check Alcotest.bool "matrices built" true (Plan.Batch.n_matrices engine > 0);
  check Alcotest.bool "queries cached" true (Plan.Batch.n_queries engine > 0);
  Plan.Batch.clear engine;
  check Alcotest.int "cleared" 0 (Plan.Batch.n_matrices engine)

let test_batch_imdb () = batch_equivalence_on (Runner.imdb ~scale:0.02 ~n_queries:45 ())
let test_batch_xmark () = batch_equivalence_on (Runner.xmark ~scale:0.02 ~n_queries:45 ())
let test_batch_dblp () = batch_equivalence_on (Runner.dblp ~scale:0.02 ~n_queries:45 ())

let test_facade_batch () =
  let ds = Runner.imdb ~scale:0.01 ~n_queries:30 () in
  let syn = small_synopsis ds in
  let queries = Runner.workload_queries ds in
  let options = Xcluster.Serve.options ~domains:1 () in
  let res =
    match Xcluster.Serve.estimate_batch ~options syn queries with
    | Ok res -> res
    | Error e -> Alcotest.failf "estimate_batch: %s" (Xcluster.Serve.Error.to_string e)
  in
  Array.iteri
    (fun i q -> check0 "facade batch = estimate" (Xcluster.Query.estimate syn q) res.(i))
    queries;
  check Alcotest.bool "engine reachable" true
    (Plan.Batch.n_matrices (Xcluster.Serve.batch_engine syn) > 0)

(* ---- worker-count independence ----------------------------------------- *)

let test_batch_domains_bitwise () =
  (* enough queries to clear Par's sequential cutoff so 2/4 workers
     genuinely shard the workload *)
  let n = 2 * Xc_util.Par.seq_cutoff in
  let ds = Runner.xmark ~scale:0.02 ~n_queries:n () in
  let syn = small_synopsis ds in
  let engine = Plan.Batch.create syn in
  let prepared = Plan.Batch.prepare engine (Runner.workload_queries ds) in
  let base = Plan.Batch.run_prepared ~domains:1 engine prepared in
  check Alcotest.bool "workload clears the cutoff" true
    (Array.length base >= Xc_util.Par.seq_cutoff);
  List.iter
    (fun d ->
      let r = Plan.Batch.run_prepared ~domains:d engine prepared in
      check Alcotest.int "same length" (Array.length base) (Array.length r);
      Array.iteri
        (fun i v ->
          check Alcotest.bool
            (Printf.sprintf "bitwise identical at %d domains (query %d)" d i)
            true (bits_equal v base.(i)))
        r)
    [ 2; 4 ]

(* ---- path-expression interning ----------------------------------------- *)

let test_intern_roundtrip () =
  let parse s =
    (* reuse the twig parser: a single-edge query's root edge is the expr *)
    match (Xc_twig.Twig_parse.parse s).Xc_twig.Twig_query.root.Xc_twig.Twig_query.edges with
    | [ (expr, _) ] -> expr
    | _ -> Alcotest.fail "expected one root edge"
  in
  let exprs =
    List.map parse [ "//a/b"; "//a//b"; "/a/b"; "//a/*"; "//b"; "/a//b/c" ]
  in
  let ids = List.map Path_expr.intern exprs in
  check Alcotest.int "distinct expressions, distinct ids" (List.length ids)
    (List.length (List.sort_uniq compare ids));
  List.iter2
    (fun e id ->
      check Alcotest.int "idempotent" id (Path_expr.intern e);
      check Alcotest.bool "of_id round-trips" true (Path_expr.equal e (Path_expr.of_id id)))
    exprs ids;
  check Alcotest.bool "count covers them" true
    (Path_expr.interned_count () >= List.length exprs);
  Alcotest.check_raises "unknown id rejected"
    (Invalid_argument (Printf.sprintf "Path_expr.of_id: unknown id %d" max_int))
    (fun () -> ignore (Path_expr.of_id max_int))

(* ---- histogram quantiles ----------------------------------------------- *)

let test_quantiles () =
  let m = Metrics.create () in
  for i = 1 to 1000 do
    Metrics.observe m "lat" (float_of_int i)
  done;
  (match Metrics.quantiles m "lat" [ 0.5; 0.95; 0.99 ] with
  | Some [ (_, p50); (_, p95); (_, p99) ] ->
    check Alcotest.bool "p50 <= p95 <= p99" true (p50 <= p95 && p95 <= p99);
    check Alcotest.bool "p50 in range" true (1.0 <= p50 && p50 <= 1000.0);
    (* eighth-octave buckets: within ~9% of the true quantile *)
    check Alcotest.bool "p50 accuracy" true (450.0 <= p50 && p50 <= 550.0);
    check Alcotest.bool "p99 accuracy" true (900.0 <= p99 && p99 <= 1000.0)
  | _ -> Alcotest.fail "expected three quantiles");
  check Alcotest.bool "missing histogram" true (Metrics.quantiles m "nope" [ 0.5 ] = None);
  (* single observation: every quantile collapses to it via clamping *)
  Metrics.observe m "one" 7.0;
  (match Metrics.quantiles m "one" [ 0.0; 0.5; 1.0 ] with
  | Some qs -> List.iter (fun (_, v) -> check0 "clamped to the sample" 7.0 v) qs
  | None -> Alcotest.fail "expected quantiles");
  (* empty stat: nan *)
  let empty =
    { Metrics.h_count = 0; h_sum = 0.0; h_min = infinity; h_max = neg_infinity;
      h_buckets = [] }
  in
  check Alcotest.bool "empty is nan" true (Float.is_nan (Metrics.quantile_of_stat empty 0.5))

(* Regression: a skewed latency sample whose p95 and p99 live in the
   same power-of-two octave. Whole-octave buckets lumped all three
   clusters into (512, 1024], reporting a p95 ~25% above the true
   value and indistinguishable from p99; eighth-octave buckets
   resolve the clusters. *)
let test_quantile_resolution () =
  let m = Metrics.create () in
  for _ = 1 to 940 do Metrics.observe m "lat" 560.0 done;
  for _ = 1 to 50 do Metrics.observe m "lat" 800.0 done;
  for _ = 1 to 10 do Metrics.observe m "lat" 1010.0 done;
  match Metrics.quantiles m "lat" [ 0.95; 0.99 ] with
  | Some [ (_, p95); (_, p99) ] ->
    (* the true p95 is 800 (samples 941..990); demand < 10% error *)
    check Alcotest.bool "p95 resolves the mid cluster" true
      (Float.abs (p95 -. 800.0) /. 800.0 < 0.10);
    (* p99 (true value 800..1010 boundary) must not collapse into p95 *)
    check Alcotest.bool "p99 distinct from p95" true (p99 > p95 *. 1.05)
  | _ -> Alcotest.fail "expected two quantiles"

let () =
  Alcotest.run "batch"
    [ ( "transition",
        [ Alcotest.test_case "matrix rows = reach_dist" `Slow test_matrix_rows;
          Alcotest.test_case "root rows" `Quick test_matrix_root_row ] );
      ( "equivalence",
        [ Alcotest.test_case "imdb" `Slow test_batch_imdb;
          Alcotest.test_case "xmark" `Slow test_batch_xmark;
          Alcotest.test_case "dblp" `Slow test_batch_dblp;
          Alcotest.test_case "facade" `Quick test_facade_batch ] );
      ( "determinism",
        [ Alcotest.test_case "bitwise across domains" `Slow test_batch_domains_bitwise ] );
      ( "intern",
        [ Alcotest.test_case "round-trip" `Quick test_intern_roundtrip ] );
      ( "quantiles",
        [ Alcotest.test_case "histogram quantiles" `Quick test_quantiles;
          Alcotest.test_case "same-octave percentiles resolve" `Quick
            test_quantile_resolution ] ) ]
