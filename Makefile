.PHONY: all build test check fmt bench clean

all: build

build:
	dune build

test:
	dune runtest

# The pre-commit gate: format (when an ocamlformat config is present),
# compile everything, and run the full test suite.
check:
	-dune build @fmt --auto-promote 2>/dev/null
	dune build
	dune runtest

fmt:
	dune build @fmt --auto-promote

bench:
	dune exec bench/main.exe

clean:
	dune clean
