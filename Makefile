.PHONY: all build test check fmt bench bench-serve bench-fault bench-daemon bench-chaos bench-update clean

all: build

build:
	dune build

test:
	dune runtest

# The pre-commit gate: format (when ocamlformat is available),
# compile everything, and run the full test suite.
check: fmt build test

fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt --auto-promote; \
	else \
	  echo "fmt: ocamlformat not installed, skipping (CI enforces it)"; \
	fi

bench:
	dune exec bench/main.exe

# Paper-scale serving benchmark: batched estimation vs the planned
# path, with throughput, latency percentiles, and bit-identity gates.
# Appends a JSON line to BENCH_serve.json.
bench-serve:
	dune exec bench/main.exe -- serve

# Robustness smoke: bounded codec fuzz plus a save/load storm through
# the Fault injection sites (honors XC_FAULTS; exits non-zero on any
# contract violation). Appends a JSON line to BENCH_fault.json.
bench-fault:
	dune exec bench/main.exe -- fault

# Estimation-daemon benchmark: a forked daemon driven by 1 and 4
# concurrent clients, with bit-identity, fault-storm-survival, and
# clean-shutdown gates (exits non-zero on any violation). Appends a
# JSON line to BENCH_daemon.json.
bench-daemon:
	dune exec bench/main.exe -- daemon

# Serving-plane chaos benchmark: stalled-peer isolation, slow-loris
# eviction timing, overload shedding (typed Overloaded + with_retry
# recovery), seeded fault storms over serve.accept / serve.send /
# serve.deadline / client.connect with bit-identity through and after
# each storm, and timed graceful drain — hard gates, exits non-zero on
# any violation (honors XC_CHAOS_SEED). Appends a JSON line to
# BENCH_chaos.json.
bench-chaos:
	dune exec bench/main.exe -- chaos

# Incremental-maintenance benchmark: an XMark update stream applied to
# a live builder (localized repair) vs a from-scratch rebuild, with
# >= 10x speedup and < 1% added-error gates, plus the generation-swap
# protocol checks. Appends a JSON line to BENCH_update.json.
bench-update:
	dune exec bench/main.exe -- update

clean:
	dune clean
