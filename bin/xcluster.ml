(* The xcluster command-line tool.

   Subcommands:
     gen       generate a synthetic data set as XML
     inspect   parse an XML file and print its statistics
     build     build an XCluster synopsis for an XML file and report sizes
     estimate  estimate (and optionally verify) a twig query's selectivity
     verify    check a saved synopsis's integrity without loading it
     serve     run the multi-synopsis estimation daemon
     client    talk to a running daemon

   Examples:
     xcluster gen -d imdb -s 0.1 -o imdb.xml
     xcluster inspect imdb.xml
     xcluster estimate imdb.xml -q "//movie[year > 1990]/title" --verify
     xcluster verify imdb.syn
     xcluster serve --socket /tmp/xc.sock --synopsis imdb=imdb.syn
     xcluster client estimate --socket /tmp/xc.sock -s imdb -q "//movie/title"
     xcluster client shutdown --socket /tmp/xc.sock

   Exit codes (every command):
     0    success
     1    verify: the synopsis file failed its integrity check
     2    malformed or corrupt input (XML syntax error, corrupt synopsis,
          unknown synopsis name, unreachable daemon)
     3    internal error (including daemon-side protocol violations)
     124  command-line usage error (cmdliner) *)

open Cmdliner

let exit_verify_failed = 1
let exit_corrupt = 2
let exit_internal = 3

exception Usage of string
exception Corrupt_input of string

(* Every subcommand body runs under this guard: user-caused failures
   (bad XML, a damaged synopsis, a bad flag value) get a one-line
   message and a distinct exit code instead of a backtrace. *)
let guarded f =
  try f () with
  | Usage msg ->
    Format.eprintf "xcluster: %s@." msg;
    Cmd.Exit.cli_error
  | Corrupt_input msg ->
    Format.eprintf "xcluster: %s@." msg;
    exit_corrupt
  | Xc_xml.Parser.Malformed msg ->
    Format.eprintf "xcluster: malformed XML: %s@." msg;
    exit_corrupt
  | Sys_error msg ->
    Format.eprintf "xcluster: %s@." msg;
    exit_corrupt
  | Failure msg ->
    Format.eprintf "xcluster: internal error: %s@." msg;
    exit_internal
  | exn ->
    Format.eprintf "xcluster: internal error: %s@." (Printexc.to_string exn);
    exit_internal

let typing_for = function
  | "imdb" -> Xc_xml.Parser.typing_of_assoc Xc_data.Imdb.value_typing
  | "xmark" -> Xc_xml.Parser.typing_of_assoc Xc_data.Xmark.value_typing
  | "dblp" -> Xc_xml.Parser.typing_of_assoc Xc_data.Dblp.value_typing
  | _ -> Xc_xml.Parser.default_typing

let load ~typing_name file =
  let typing = typing_for typing_name in
  Xc_xml.Parser.parse_file ~typing file

(* ---- shared options ------------------------------------------------- *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"XML input file.")

let typing_arg =
  Arg.(
    value
    & opt string "auto"
    & info [ "typing" ] ~docv:"KIND"
        ~doc:
          "Value-typing table: $(b,imdb), $(b,xmark), $(b,dblp), or $(b,auto) \
           (heuristic inference from the text).")

let bstr_arg =
  Arg.(
    value & opt int 20
    & info [ "bstr" ] ~docv:"KB" ~doc:"Structural budget in kilobytes.")

let bval_arg =
  Arg.(
    value & opt int 150
    & info [ "bval" ] ~docv:"KB" ~doc:"Value-summary budget in kilobytes.")

(* ---- gen -------------------------------------------------------------- *)

let gen_cmd =
  let dataset =
    Arg.(
      value & opt string "imdb"
      & info [ "d"; "dataset" ] ~docv:"NAME"
          ~doc:"Data set: $(b,imdb), $(b,xmark) or $(b,dblp).")
  in
  let scale =
    Arg.(
      value & opt float 1.0
      & info [ "s"; "scale" ] ~docv:"F"
          ~doc:"Scale factor (1.0 is the paper's ~200k elements).")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"RNG seed.") in
  let output =
    Arg.(
      required & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output XML file.")
  in
  let run dataset scale seed output =
    guarded @@ fun () ->
    let doc =
      match dataset with
      | "imdb" ->
        Xc_data.Imdb.generate ~seed
          ~n_movies:(max 10 (int_of_float (scale *. 8000.0)))
          ()
      | "xmark" -> Xc_data.Xmark.generate ~seed ~scale ()
      | "dblp" ->
        Xc_data.Dblp.generate ~seed ~n_authors:(max 10 (int_of_float (scale *. 4000.0))) ()
      | other -> raise (Usage (Printf.sprintf "unknown dataset %S (imdb | xmark | dblp)" other))
    in
    Xc_xml.Writer.to_file output doc;
    Format.printf "wrote %s: %d elements@." output (Xc_xml.Document.n_elements doc);
    0
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a synthetic XML data set.")
    Term.(const run $ dataset $ scale $ seed $ output)

(* ---- inspect ----------------------------------------------------------- *)

let inspect_cmd =
  let run file typing_name =
    guarded @@ fun () ->
    let doc = load ~typing_name file in
    let stats = Xc_xml.Stats.compute doc in
    Format.printf "elements:   %d@." stats.Xc_xml.Stats.n_elements;
    Format.printf "tags:       %d@." stats.Xc_xml.Stats.n_labels;
    Format.printf "height:     %d@." stats.Xc_xml.Stats.height;
    Format.printf "serialized: %.1f MB@."
      (float_of_int stats.Xc_xml.Stats.serialized_bytes /. 1048576.0);
    Format.printf "paths:      %d (%d value-bearing)@."
      (List.length stats.Xc_xml.Stats.paths)
      (List.length (Xc_xml.Stats.value_paths stats));
    List.iter
      (fun p ->
        Format.printf "  %a  %a x%d@." Xc_xml.Stats.pp_path p.Xc_xml.Stats.path
          Xc_xml.Value.pp_vtype p.Xc_xml.Stats.vtype p.Xc_xml.Stats.elements)
      (Xc_xml.Stats.value_paths stats);
    0
  in
  Cmd.v
    (Cmd.info "inspect" ~doc:"Parse an XML file and print its statistics.")
    Term.(const run $ file_arg $ typing_arg)

(* ---- build ------------------------------------------------------------- *)

let build_cmd =
  let save_arg =
    Arg.(
      value & opt (some string) None
      & info [ "save" ] ~docv:"FILE" ~doc:"Persist the synopsis to a file.")
  in
  let run file typing_name bstr bval save =
    guarded @@ fun () ->
    let doc = load ~typing_name file in
    let reference = Xcluster.Build.reference doc in
    Format.printf "reference: %a@." Xcluster.Build.builder_stats reference;
    let t0 = Unix.gettimeofday () in
    let syn = Xcluster.Build.compress (Xcluster.Build.budget ~bstr_kb:bstr ~bval_kb:bval ()) reference in
    Format.printf "xcluster:  %a  (built in %.2fs)@." Xcluster.Query.pp_stats syn
      (Unix.gettimeofday () -. t0);
    (match Xcluster.Query.validate syn with
    | Ok () -> ()
    | Error e -> Fmt.failwith "synopsis failed validation: %s" e);
    (match save with
    | Some path -> (
      match Xcluster.Store.save path syn with
      | Ok () ->
        Format.printf "saved to %s (%d bytes on disk)@." path
          (Xc_core.Codec.size_on_disk syn)
      | Error e -> Fmt.failwith "save failed: %s" (Xc_core.Codec.error_to_string e))
    | None -> ());
    0
  in
  Cmd.v
    (Cmd.info "build" ~doc:"Build an XCluster synopsis within a budget.")
    Term.(const run $ file_arg $ typing_arg $ bstr_arg $ bval_arg $ save_arg)

(* ---- workload ------------------------------------------------------------ *)

let workload_cmd =
  let n_arg =
    Arg.(value & opt int 100 & info [ "n" ] ~docv:"N" ~doc:"Number of queries.")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Workload RNG seed.")
  in
  let batch_arg =
    Arg.(
      value & flag
      & info [ "batch" ]
          ~doc:
            "Serve the workload through the batched estimation engine \
             (interned transition matrices, $(b,XC_DOMAINS)-way sharding) \
             instead of per-query planned estimates, and report serving \
             throughput and latency percentiles. Estimates are bit-identical \
             either way.")
  in
  let stats_arg =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "With $(b,--batch): print the serving metrics as JSON after the \
             run, including the cohort counters ($(b,batch.cohorts), \
             $(b,batch.cohort_max), $(b,batch.arena_resets), \
             $(b,batch.minor_words)).")
  in
  let run file typing_name bstr bval n seed batch stats =
    guarded @@ fun () ->
    let doc = load ~typing_name file in
    let syn =
      Xcluster.Build.run ~budget:(Xcluster.Build.budget ~bstr_kb:bstr ~bval_kb:bval ()) doc
    in
    let spec = { Xc_twig.Workload.default_spec with n_queries = n; seed } in
    let wl = Xc_twig.Workload.generate ~spec doc in
    let sanity = Xc_twig.Workload.sanity_bound wl in
    let estimator =
      if not batch then Xcluster.Query.estimate syn
      else begin
        let queries =
          Array.of_list (List.map (fun e -> e.Xc_twig.Workload.query) wl)
        in
        Xcluster.Metrics.reset ();
        let t0 = Unix.gettimeofday () in
        let results = Xcluster.Serve.estimate_batch_exn syn queries in
        let dt = Unix.gettimeofday () -. t0 in
        let m = Xc_util.Metrics.global in
        Format.printf
          "batch: %d queries in %.1f ms (%.0f qps, %d matrices, %d domains used)@."
          (Array.length queries) (1000.0 *. dt)
          (float_of_int (Array.length queries) /. Float.max dt 1e-9)
          (Xc_core.Plan.Batch.n_matrices (Xcluster.Serve.batch_engine syn))
          (Xc_util.Par.max_used ());
        (* the default cohort path records per-cohort latency; the
           query-major path per-query — report whichever ran *)
        (match
           List.find_map
             (fun name ->
               match Xc_util.Metrics.quantiles m name [ 0.5; 0.95; 0.99 ] with
               | Some qs -> Some (name, qs)
               | None -> None)
             [ "estimate.cohort_us"; "estimate.batch_us" ]
         with
        | Some (name, [ (_, p50); (_, p95); (_, p99) ]) ->
          Format.printf "latency (%s): p50 %.1f  p95 %.1f  p99 %.1f@."
            (if name = "estimate.cohort_us" then "us/cohort" else "us/query")
            p50 p95 p99
        | _ -> ());
        Format.printf "cohorts: %d (max %d), arena resets %d, minor words %d@."
          (Xc_util.Metrics.counter_value m "batch.cohorts")
          (Xc_util.Metrics.counter_value m "batch.cohort_max")
          (Xc_util.Metrics.counter_value m "batch.arena_resets")
          (Xc_util.Metrics.counter_value m "batch.minor_words");
        if stats then Format.printf "metrics: %s@." (Xcluster.Metrics.json ());
        (* estimates keyed injectively by query structure, so the scorer
           below reads the batch results *)
        let by_key = Hashtbl.create (Array.length queries) in
        Array.iteri
          (fun i q -> Hashtbl.replace by_key (Xc_core.Plan.query_key q) results.(i))
          queries;
        fun q -> Hashtbl.find by_key (Xc_core.Plan.query_key q)
      end
    in
    let scored = Xc_exp.Error_metric.score estimator wl in
    Format.printf "workload: %d positive twigs, sanity bound %.0f@."
      (List.length wl) sanity;
    Format.printf "overall avg. relative error: %.1f%%@."
      (100.0 *. Xc_exp.Error_metric.overall_relative ~sanity scored);
    List.iter
      (fun (cls, err) ->
        Format.printf "  %-8s %.1f%%@."
          (Xc_twig.Twig_query.class_name cls)
          (100.0 *. err))
      (Xc_exp.Error_metric.per_class_relative ~sanity scored);
    0
  in
  Cmd.v
    (Cmd.info "workload"
       ~doc:
         "Generate a random positive twig workload over an XML file and report \
          the synopsis's per-class estimation error (the paper's Sec. 6 \
          methodology, on your own data).")
    Term.(
      const run $ file_arg $ typing_arg $ bstr_arg $ bval_arg $ n_arg $ seed_arg
      $ batch_arg $ stats_arg)

(* ---- estimate ----------------------------------------------------------- *)

let estimate_cmd =
  let query_arg =
    Arg.(
      required & opt (some string) None
      & info [ "q"; "query" ] ~docv:"TWIG"
          ~doc:"Twig query, e.g. \"//movie[year > 1990]/title[contains(War)]\".")
  in
  let verify =
    Arg.(
      value & flag
      & info [ "verify" ] ~doc:"Also evaluate the query exactly and report the error.")
  in
  let synopsis_arg =
    Arg.(
      value & opt (some file) None
      & info [ "synopsis" ] ~docv:"FILE"
          ~doc:"Estimate from a synopsis saved by $(b,build --save) instead of                 rebuilding one.")
  in
  let explain_arg =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:"Show the query embedding: which clusters each variable binds to.")
  in
  let stats_arg =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Print the estimation pipeline's metrics (plan compiles, cache \
             hits, expansion depths, latency) as JSON after the estimate.")
  in
  let run file typing_name bstr bval synopsis query verify explain stats =
    guarded @@ fun () ->
    let doc = load ~typing_name file in
    let q = Xcluster.Query.parse query in
    let syn =
      match synopsis with
      | Some path -> (
        match Xcluster.Store.load path with
        | Ok syn -> syn
        | Error e ->
          raise
            (Corrupt_input
               (Printf.sprintf "%s: corrupt synopsis: %s" path
                  (Xc_core.Codec.error_to_string e))))
      | None ->
        Xcluster.Build.run ~budget:(Xcluster.Build.budget ~bstr_kb:bstr ~bval_kb:bval ()) doc
    in
    Xcluster.Metrics.reset ();
    let est = Xcluster.Query.estimate syn q in
    Format.printf "estimate: %.2f binding tuples@." est;
    if verify then begin
      let exact = Xc_twig.Twig_eval.selectivity doc q in
      Format.printf "exact:    %.0f@." exact;
      Format.printf "rel.err:  %.1f%%@."
        (100.0 *. Float.abs (est -. exact) /. Float.max exact 1.0)
    end;
    if explain then
      List.iter
        (fun e ->
          Format.printf "variable q%d binds:@." e.Xc_core.Estimate.query_node;
          List.iteri
            (fun i (sid, label, w) ->
              if i < 6 then
                Format.printf "  cluster %d <%s>: %.1f expected elements@." sid label w)
            e.Xc_core.Estimate.bindings)
        (Xcluster.Query.explain syn q);
    if stats then begin
      Format.printf "metrics: %s@." (Xcluster.Metrics.json ());
      match
        Xc_util.Metrics.quantiles Xc_util.Metrics.global "estimate.plan_us"
          [ 0.5; 0.95; 0.99 ]
      with
      | Some [ (_, p50); (_, p95); (_, p99) ] ->
        Format.printf "latency (us): p50 %.1f  p95 %.1f  p99 %.1f@." p50 p95 p99
      | _ -> ()
    end;
    0
  in
  Cmd.v
    (Cmd.info "estimate" ~doc:"Estimate a twig query's selectivity from a synopsis.")
    Term.(
      const run $ file_arg $ typing_arg $ bstr_arg $ bval_arg $ synopsis_arg
      $ query_arg $ verify $ explain_arg $ stats_arg)

(* ---- verify ------------------------------------------------------------- *)

let verify_cmd =
  let file =
    Arg.(
      required & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Synopsis file saved by $(b,build --save).")
  in
  let lazy_arg =
    Arg.(
      value & flag
      & info [ "lazy" ]
          ~doc:
            "Check only what a lazy $(b,load) verifies at admission (v3: \
             prologue, directory checksum, and the node-attribute sections); \
             the CSR and value-summary sections are reported unchecked. \
             Mirrors the daemon's cold-start admission check.")
  in
  let eager_arg =
    Arg.(
      value & flag
      & info [ "eager" ] ~doc:"Verify every section CRC (the default).")
  in
  let sections_arg =
    Arg.(
      value & flag
      & info [ "sections" ]
          ~doc:
            "Print a per-section CRC report. Unlike the summary check this \
             does not stop at the first bad section — it localizes the \
             damage.")
  in
  let print_sections file ~eager =
    match Xcluster.Store.sections ~eager file with
    | Ok secs ->
      List.iter
        (fun s ->
          Format.printf "  %-10s %10d bytes  %s@." s.Xc_core.Codec.sec_name
            s.Xc_core.Codec.sec_bytes
            (match s.Xc_core.Codec.sec_crc_ok with
            | Some true -> "crc ok"
            | Some false -> "CRC MISMATCH"
            | None -> "unchecked"))
        secs
    | Error e ->
      (* framing damage: no directory to report section-by-section *)
      Format.printf "  (no section report: %s)@." (Xc_core.Codec.error_to_string e)
  in
  let run file lazy_mode eager_mode sections =
    guarded @@ fun () ->
    if lazy_mode && eager_mode then
      raise (Usage "--lazy and --eager are mutually exclusive");
    let eager = not lazy_mode in
    match Xcluster.Store.verify ~eager file with
    | Ok info ->
      Format.printf "%s: OK (format v%d, %d nodes, %d bytes, %s)@." file
        info.Xc_core.Codec.i_version info.Xc_core.Codec.i_nodes
        info.Xc_core.Codec.i_bytes
        (if info.Xc_core.Codec.i_checksummed then "checksums verified"
         else if info.Xc_core.Codec.i_version = 1 then
           "no checksums in v1: verified by full decode"
         else "lazy: admission-time checks only");
      if sections then print_sections file ~eager;
      0
    | Error e ->
      Format.eprintf "%s: CORRUPT: %s@." file (Xc_core.Codec.error_to_string e);
      if sections then print_sections file ~eager;
      exit_verify_failed
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Check a saved synopsis's integrity (framing and per-section CRC-32 \
          for the v2/v3 formats; a full decode for checksum-less v1 files) \
          without building the synopsis. $(b,--lazy) restricts the check to \
          what a lazy load verifies at admission; $(b,--sections) prints a \
          per-section CRC report. Exits 0 when intact, 1 when corrupt.")
    Term.(const run $ file $ lazy_arg $ eager_arg $ sections_arg)

(* ---- serve -------------------------------------------------------------- *)

let socket_arg =
  Arg.(
    value
    & opt string "xcluster.sock"
    & info [ "socket" ] ~docv:"ENDPOINT"
        ~doc:
          "Daemon endpoint: $(b,unix:PATH), $(b,tcp:HOST:PORT), or a bare \
           path (taken as a Unix socket).")

let endpoint_of socket =
  match Xcluster.Serve.Protocol.endpoint_of_string socket with
  | Ok e -> e
  | Error msg -> raise (Usage msg)

let serve_options ~domains ~strict =
  try
    Xcluster.Serve.options ?domains
      ~fallback:(if strict then Xcluster.Serve.Strict else Xcluster.Serve.Degrade)
      ()
  with Invalid_argument msg -> raise (Usage msg)

let serve_cmd =
  let synopsis_args =
    Arg.(
      value & opt_all string []
      & info [ "synopsis" ] ~docv:"NAME=PATH"
          ~doc:
            "Serve the synopsis artifact at $(i,PATH) under $(i,NAME) \
             (repeatable). A corrupt artifact is skipped and counted, not \
             fatal.")
  in
  let dir_arg =
    Arg.(
      value & opt (some dir) None
      & info [ "dir" ] ~docv:"DIR"
          ~doc:
            "Serve every $(b,*.syn) file in $(i,DIR), named by basename \
             without the extension.")
  in
  let max_engines_arg =
    Arg.(
      value & opt int 8
      & info [ "max-engines" ] ~docv:"N"
          ~doc:
            "Bound of the batch-engine LRU: at most $(i,N) synopses keep \
             their compiled engines resident at once.")
  in
  let domains_arg =
    Arg.(
      value & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Default domain count for batch evaluation when a request does \
             not pin its own (falls back to $(b,XC_DOMAINS) when omitted).")
  in
  let strict_arg =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:
            "Answer engine trouble with error frames instead of degrading \
             to uncached estimation.")
  in
  let workers_arg =
    Arg.(
      value & opt (some int) None
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Worker-thread pool size: connections served concurrently \
             (default $(b,XC_SERVE_WORKERS) or 4).")
  in
  let backlog_arg =
    Arg.(
      value & opt (some int) None
      & info [ "backlog" ] ~docv:"N"
          ~doc:"Listen backlog (default $(b,XC_SERVE_BACKLOG) or 64).")
  in
  let max_pending_arg =
    Arg.(
      value & opt (some int) None
      & info [ "max-pending" ] ~docv:"N"
          ~doc:
            "Accepted connections allowed to wait for a worker; beyond this \
             the daemon sheds with a typed overloaded frame (default 64).")
  in
  let timeout_ms_arg =
    Arg.(
      value & opt (some int) None
      & info [ "timeout-ms" ] ~docv:"MS"
          ~doc:
            "Per-connection socket read/write silence bound \
             ($(b,SO_RCVTIMEO)/$(b,SO_SNDTIMEO); default 30000).")
  in
  let budget_ms_arg =
    Arg.(
      value & opt (some int) None
      & info [ "budget-ms" ] ~docv:"MS"
          ~doc:
            "Wall-clock budget for receiving one complete request frame — \
             the slow-loris bound (default 30000).")
  in
  let drain_ms_arg =
    Arg.(
      value & opt (some int) None
      & info [ "drain-ms" ] ~docv:"MS"
          ~doc:
            "How long a graceful shutdown waits for in-flight requests \
             before forcing the remaining sockets shut (default 5000).")
  in
  let run socket synopses dir max_engines domains strict workers backlog
      max_pending timeout_ms budget_ms drain_ms =
    guarded @@ fun () ->
    let endpoint = endpoint_of socket in
    let options = serve_options ~domains ~strict in
    if max_engines < 1 then raise (Usage "--max-engines must be >= 1");
    let positive flag = function
      | Some n when n < 1 -> raise (Usage (flag ^ " must be >= 1"))
      | v -> v
    in
    let workers = positive "--workers" workers in
    let backlog = positive "--backlog" backlog in
    let max_pending = positive "--max-pending" max_pending in
    let ms flag v default =
      match positive flag v with
      | Some m -> float_of_int m /. 1000.0
      | None -> default
    in
    let registry = Xcluster.Serve.Registry.create ~max_engines () in
    List.iter
      (fun spec ->
        match String.index_opt spec '=' with
        | Some i when i > 0 ->
          Xcluster.Serve.Registry.add_source registry
            ~name:(String.sub spec 0 i)
            ~path:(String.sub spec (i + 1) (String.length spec - i - 1))
        | _ ->
          raise (Usage (Printf.sprintf "--synopsis %S: expected NAME=PATH" spec)))
      synopses;
    (match dir with
    | Some d -> (
      match Xcluster.Serve.Registry.add_dir registry d with
      | Ok () -> ()
      | Error e ->
        raise (Corrupt_input (Xcluster.Serve.Error.to_string e)))
    | None -> ());
    if Xcluster.Serve.Registry.sources registry = [] then
      raise (Usage "nothing to serve: give --synopsis NAME=PATH and/or --dir DIR");
    let d = Xcluster.Serve.Daemon.default_config in
    let config =
      {
        d with
        Xcluster.Serve.Daemon.endpoint;
        max_engines;
        options;
        workers = Option.value ~default:d.Xcluster.Serve.Daemon.workers workers;
        backlog = Option.value ~default:d.Xcluster.Serve.Daemon.backlog backlog;
        max_pending =
          Option.value ~default:d.Xcluster.Serve.Daemon.max_pending max_pending;
        recv_timeout_s =
          ms "--timeout-ms" timeout_ms d.Xcluster.Serve.Daemon.recv_timeout_s;
        send_timeout_s =
          ms "--timeout-ms" timeout_ms d.Xcluster.Serve.Daemon.send_timeout_s;
        request_budget_s =
          ms "--budget-ms" budget_ms d.Xcluster.Serve.Daemon.request_budget_s;
        drain_timeout_s =
          ms "--drain-ms" drain_ms d.Xcluster.Serve.Daemon.drain_timeout_s;
      }
    in
    let on_ready endpoint =
      Format.printf "xcluster serve: listening on %s (%d synopses admitted)@."
        (Xcluster.Serve.Protocol.endpoint_to_string endpoint)
        (Xcluster.Serve.Registry.n_admitted registry);
      Format.print_flush ()
    in
    Xcluster.Serve.Daemon.run ~config ~on_ready registry;
    Format.printf "xcluster serve: shut down cleanly@.";
    0
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the multi-synopsis estimation daemon: load the named artifacts \
          through the verifying codec (corrupt ones skipped and counted), \
          bind the endpoint, and answer $(b,client) requests until a \
          shutdown frame arrives.")
    Term.(
      const run $ socket_arg $ synopsis_args $ dir_arg $ max_engines_arg
      $ domains_arg $ strict_arg $ workers_arg $ backlog_arg $ max_pending_arg
      $ timeout_ms_arg $ budget_ms_arg $ drain_ms_arg)

(* ---- client ------------------------------------------------------------- *)

let client_cmd =
  let op_arg =
    Arg.(
      required
      & pos 0 (some (enum
          [ ("estimate", `Estimate); ("batch", `Batch); ("list", `List);
            ("stats", `Stats); ("ping", `Ping); ("update", `Update);
            ("reload", `Reload); ("shutdown", `Shutdown) ]))
          None
      & info [] ~docv:"OP"
          ~doc:
            "One of $(b,estimate), $(b,batch), $(b,list), $(b,stats), \
             $(b,ping), $(b,update), $(b,reload), $(b,shutdown).")
  in
  let name_arg =
    Arg.(
      value & opt (some string) None
      & info [ "s"; "name" ] ~docv:"NAME"
          ~doc:"Synopsis name ($(b,estimate) and $(b,batch)).")
  in
  let query_args =
    Arg.(
      value & opt_all string []
      & info [ "q"; "query" ] ~docv:"TWIG"
          ~doc:
            "Twig query source text; repeatable for $(b,batch), exactly one \
             for $(b,estimate).")
  in
  let domains_arg =
    Arg.(
      value & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:"Pin the daemon-side domain count for this batch.")
  in
  let strict_arg =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:"Refuse degraded (uncached) evaluation for this batch.")
  in
  let path_arg =
    Arg.(
      value & opt (some string) None
      & info [ "path" ] ~docv:"FILE"
          ~doc:"Artifact holding the repaired generation ($(b,update)).")
  in
  let retries_arg =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Retry a transiently failing request (overloaded daemon, dead \
             connection, timeout) up to $(i,N) times with capped jittered \
             exponential backoff, honoring the daemon's retry-after hint. \
             Refused for the non-idempotent $(b,update) and $(b,shutdown).")
  in
  let client_timeout_arg =
    Arg.(
      value & opt (some int) None
      & info [ "timeout-ms" ] ~docv:"MS"
          ~doc:
            "Bound the connect and every read/write on the connection; a \
             quiet daemon surfaces as a typed timeout instead of a hang.")
  in
  (* Errors out of the serving layer map onto the tool's exit codes:
     protocol damage and daemon-internal trouble are [exit_internal];
     everything the caller can fix — unknown name, bad query, corrupt
     artifact, unreachable daemon — is [exit_corrupt]. *)
  let fail (e : Xcluster.Serve.error) =
    Format.eprintf "xcluster: %s@." (Xcluster.Serve.Error.to_string e);
    match e with
    | Xcluster.Serve.Error.Protocol _ -> exit_internal
    | _ -> exit_corrupt
  in
  let run socket op name queries domains strict path retries timeout_ms =
    guarded @@ fun () ->
    let endpoint = endpoint_of socket in
    let require_name () =
      match name with
      | Some n -> n
      | None -> raise (Usage "this operation needs --name NAME")
    in
    if retries < 0 then raise (Usage "--retries must be >= 0");
    (match (op, retries) with
    | (`Update | `Shutdown), r when r > 0 ->
      raise (Usage "--retries does not apply to update/shutdown (not idempotent)")
    | _ -> ());
    let timeout_s =
      match timeout_ms with
      | Some m when m < 1 -> raise (Usage "--timeout-ms must be >= 1")
      | Some m -> Some (float_of_int m /. 1000.0)
      | None -> None
    in
    (* each arm prints only on success, so a retried attempt never
       leaves half an answer on stdout *)
    let perform c =
      match op with
      | `Estimate -> (
        let synopsis = require_name () in
        let query =
          match queries with
          | [ q ] -> q
          | _ -> raise (Usage "estimate takes exactly one -q QUERY")
        in
        match Xcluster.Serve.Client.estimate c ~synopsis ~query with
        | Ok est ->
          Format.printf "%.6f@." est;
          Ok 0
        | Error _ as e -> e)
      | `Batch -> (
        let synopsis = require_name () in
        if queries = [] then raise (Usage "batch needs at least one -q QUERY");
        let options = serve_options ~domains ~strict in
        let qs = Array.of_list queries in
        match Xcluster.Serve.Client.estimate_batch c ~options ~synopsis qs with
        | Ok ests ->
          Array.iteri (fun i est -> Format.printf "%s\t%.6f@." qs.(i) est) ests;
          Ok 0
        | Error _ as e -> e)
      | `List -> (
        match Xcluster.Serve.Client.list_synopses c with
        | Ok listed ->
          Array.iter
            (fun l ->
              Format.printf "%s\t%d nodes\t%d edges\t%d bytes@."
                l.Xcluster.Serve.Protocol.l_name l.Xcluster.Serve.Protocol.l_nodes
                l.Xcluster.Serve.Protocol.l_edges l.Xcluster.Serve.Protocol.l_bytes)
            listed;
          Ok 0
        | Error _ as e -> e)
      | `Stats -> (
        match Xcluster.Serve.Client.stats c with
        | Ok json ->
          Format.printf "%s@." json;
          Ok 0
        | Error _ as e -> e)
      | `Ping -> (
        match Xcluster.Serve.Client.ping c with
        | Ok h ->
          Format.printf
            "ok: %d synopses, %d generations, queue %d, inflight %d, up %.1fs%s@."
            h.Xcluster.Serve.Protocol.h_synopses
            h.Xcluster.Serve.Protocol.h_generations
            h.Xcluster.Serve.Protocol.h_queue
            h.Xcluster.Serve.Protocol.h_inflight
            h.Xcluster.Serve.Protocol.h_uptime_s
            (if h.Xcluster.Serve.Protocol.h_draining then ", draining" else "");
          Ok 0
        | Error _ as e -> e)
      | `Update -> (
        let synopsis = require_name () in
        let path =
          match path with
          | Some p -> p
          | None -> raise (Usage "update needs --path FILE")
        in
        match Xcluster.Serve.Client.update c ~synopsis ~path with
        | Ok generation ->
          Format.printf "swapped %s to generation %d@." synopsis generation;
          Ok 0
        | Error _ as e -> e)
      | `Reload -> (
        match Xcluster.Serve.Client.reload c with
        | Ok r ->
          Format.printf "reloaded: %d admitted, %d skipped@."
            r.Xcluster.Serve.Registry.loaded r.Xcluster.Serve.Registry.skipped;
          Ok 0
        | Error _ as e -> e)
      | `Shutdown -> (
        match Xcluster.Serve.Client.shutdown c with
        | Ok () ->
          Format.printf "daemon acknowledged shutdown@.";
          Ok 0
        | Error _ as e -> e)
    in
    let outcome =
      if retries > 0 then
        Xcluster.Serve.Client.with_retry ~attempts:(retries + 1) ?timeout_s
          endpoint perform
      else
        match Xcluster.Serve.Client.connect ?timeout_s endpoint with
        | Error _ as e -> e
        | Ok c ->
          let r = perform c in
          Xcluster.Serve.Client.close c;
          r
    in
    match outcome with Ok code -> code | Error e -> fail e
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Talk to a running $(b,serve) daemon: estimate one query or a batch \
          against a named synopsis, list what the daemon holds, fetch its \
          metrics, probe its health, swap a synopsis to a repaired \
          generation, trigger an artifact reload, or shut it down.")
    Term.(
      const run $ socket_arg $ op_arg $ name_arg $ query_args $ domains_arg
      $ strict_arg $ path_arg $ retries_arg $ client_timeout_arg)

let () =
  let exits =
    Cmd.Exit.info ~doc:"on success." 0
    :: Cmd.Exit.info ~doc:"on a failed $(b,verify) (the synopsis file is corrupt)." exit_verify_failed
    :: Cmd.Exit.info ~doc:"on malformed or corrupt input (XML syntax errors, corrupt synopsis files)." exit_corrupt
    :: Cmd.Exit.info ~doc:"on internal errors." exit_internal
    :: Cmd.Exit.defaults
  in
  let info =
    Cmd.info "xcluster" ~version:"1.0.0" ~exits
      ~doc:"XCluster synopses for structured XML content (ICDE 2006 reproduction)."
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ gen_cmd; inspect_cmd; build_cmd; estimate_cmd; workload_cmd;
            verify_cmd; serve_cmd; client_cmd ]))
